package swap

import (
	"fmt"
	"hash/crc32"

	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/stats"
)

// LFS is a log-structured backing store for uncompressed pages, modelling
// paging into Sprite LFS — the alternative the paper weighs against its own
// clustered store: "Sprite LFS could alleviate the problem of seeks between
// pageouts by grouping multiple pages into a single segment. However, it is
// not clear that paging into LFS would be desirable under heavy paging
// load. LFS requires significant memory for buffers, and for LFS to clean
// segments containing swap files, it must copy more 'live' blocks than for
// other types of data" (§5.1).
//
// All three of those properties are reproduced:
//
//   - pageouts accumulate in an in-memory segment buffer and reach the disk
//     as one large sequential write per segment — no per-page seeks;
//   - the segment buffer's frames are pinned from the shared pool, so LFS
//     genuinely costs memory that applications would otherwise use;
//   - rewritten pages leave dead blocks behind, and a cleaner must read
//     partly-live segments and copy their live pages forward before the
//     space can be reused.
type LFSConfig struct {
	// PageSize is the VM page size.
	PageSize int

	// SegmentBytes is the log segment size; Sprite LFS used large segments
	// (hundreds of KB) to amortize positioning. Default 256 KB.
	SegmentBytes int

	// MaxSegments caps the log's on-disk size, forcing the cleaner to run;
	// 0 sizes the log generously (cleaning still happens, later).
	MaxSegments int

	// CleanReserve is the number of free segments the cleaner tries to
	// keep ready. Default 2.
	CleanReserve int

	// Durable enables the recoverable on-media format: each segment starts
	// with a header block carrying a sequence number and a per-slot record
	// table (PageKey, length, CRC-32), written atomically with the segment's
	// data as one device transfer. RecoverLFS can then rebuild the store
	// from the media image after a crash. The header block costs one file
	// block of every segment and changes every write's size and timing, so
	// the format is off by default; the machine enables it automatically
	// when crash injection is configured.
	Durable bool

	// Paranoid re-validates the full location-map ↔ segment-table
	// consistency after every cleaner pass, turning silent accounting drift
	// into an immediate error. Debug builds and the crash harness set it.
	Paranoid bool
}

func (c *LFSConfig) setDefaults() {
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 256 * 1024
	}
	if c.CleanReserve == 0 {
		c.CleanReserve = 2
	}
}

func (c LFSConfig) validate(blockSize int) error {
	if c.PageSize <= 0 || c.PageSize%blockSize != 0 {
		return fmt.Errorf("swap: lfs page size %d incompatible with block size %d", c.PageSize, blockSize)
	}
	if c.SegmentBytes < c.PageSize || c.SegmentBytes%c.PageSize != 0 {
		return fmt.Errorf("swap: lfs segment size %d must be a multiple of the page size", c.SegmentBytes)
	}
	if c.MaxSegments < 0 || c.CleanReserve < 0 {
		return fmt.Errorf("swap: negative lfs limit")
	}
	if c.Durable {
		pages := (c.SegmentBytes - blockSize) / c.PageSize
		if pages < 1 {
			return fmt.Errorf("swap: lfs segment size %d leaves no room for pages after the %d-byte header block",
				c.SegmentBytes, blockSize)
		}
		if lfsHeaderFixed+lfsRecordBytes*pages > blockSize {
			return fmt.Errorf("swap: lfs header for %d pages does not fit one %d-byte block", pages, blockSize)
		}
	}
	return nil
}

// lfsLoc locates a page in the log.
type lfsLoc struct {
	seg int32
	idx int32 // page index within the segment
}

// lfsSegment is the bookkeeping for one on-disk segment.
type lfsSegment struct {
	pages []PageKey // key per page slot; stale slots hold a tombstone
	sums  []uint32  // CRC-32 per slot (durable format only)
	live  int
	seq   uint64 // sequence number stamped at flush (durable format only)
}

// lfsTombstone marks a dead slot.
var lfsTombstone = PageKey{Seg: -1 << 30, Page: -1}

// lfsPending is a cleaned victim segment awaiting its reuse barrier: it may
// not be overwritten until the flush carrying the last of its forwarded live
// pages has reached the media, or a crash in the window would lose
// acknowledged-durable pages.
type lfsPending struct {
	seg      int32
	afterSeq uint64 // reusable once this sequence number is durable
}

// LFS is the log-structured store.
type LFS struct {
	cfg  LFSConfig //cclint:ignore snapcover -- config: fixed at construction; the restore target is built with the same config
	fsys *fs.FS    //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	file *fs.File  //cclint:ignore snapcover -- wiring: handle reopened through the restored fs
	pool *mem.Pool //cclint:ignore snapcover -- wiring: injected at construction, not replay state

	pagesPerSeg int
	//cclint:ignore snapcover -- config: derived from cfg at construction, identical in the restore target
	headerBytes  int           // media bytes reserved for the segment header (durable format)
	bufferFrames []mem.FrameID // pinned segment buffer

	segs []*lfsSegment
	free []int32 // free segment numbers
	//cclint:ignore snapcover -- derived: the snapshot encodes page locations via the segment tables
	loc     map[PageKey]lfsLoc
	cur     int32 // segment being filled (in the buffer)
	curUsed int   // pages staged in the buffer
	inClean bool  //cclint:ignore snapcover -- transient: only true inside a cleaning pass, never at a snapshot boundary

	// Durable-format state: the open segment's full media image (header
	// block plus staged pages) accumulates here and reaches the device as
	// one write, so a crash tears it like the single transfer it is; seq
	// numbers order segments for recovery; cleaned victims wait on pending
	// until their forwarded pages are durable.
	seq     uint64
	stage   []byte
	pending []lfsPending

	// Cleaner scratch, reused across passes so steady-state cleaning
	// allocates nothing: recycled segment bookkeeping objects and the
	// page-copy/segment-sweep buffers.
	segPool  []*lfsSegment //cclint:ignore snapcover -- scratch: recycling freelist, refilled on demand
	copyBuf  []byte        //cclint:ignore snapcover -- scratch: cleaner copy buffer, dead between passes
	sweepBuf []byte        //cclint:ignore snapcover -- scratch: cleaner sweep buffer, dead between passes

	st stats.Swap
}

// NewLFS creates a log-structured store. The segment buffer's frames are
// taken from pool immediately and never returned — the "significant memory
// for buffers" the paper warns about.
func NewLFS(cfg LFSConfig, fsys *fs.FS, pool *mem.Pool) (*LFS, error) {
	l, err := makeLFS(cfg, fsys, pool, nil)
	if err != nil {
		return nil, err
	}
	cur, err := l.allocSegment()
	if err != nil {
		return nil, err
	}
	l.cur = cur
	if l.durable() {
		l.seq = 1
	}
	return l, nil
}

// makeLFS builds the store around an existing file (recovery) or a fresh one.
func makeLFS(cfg LFSConfig, fsys *fs.FS, pool *mem.Pool, file *fs.File) (*LFS, error) {
	cfg.setDefaults()
	if err := cfg.validate(fsys.BlockSize()); err != nil {
		return nil, err
	}
	if file == nil {
		file = fsys.Create("swap.lfs")
	}
	l := &LFS{
		cfg:  cfg,
		fsys: fsys,
		file: file,
		pool: pool,
		loc:  make(map[PageKey]lfsLoc),
	}
	if cfg.Durable {
		l.headerBytes = fsys.BlockSize()
		l.stage = make([]byte, cfg.SegmentBytes)
	}
	l.pagesPerSeg = (cfg.SegmentBytes - l.headerBytes) / cfg.PageSize
	for i := 0; i < l.pagesPerSeg; i++ {
		id, ok := pool.Alloc(mem.Kernel)
		if !ok {
			return nil, fmt.Errorf("swap: not enough memory for the LFS segment buffer (%d pages)", l.pagesPerSeg)
		}
		l.bufferFrames = append(l.bufferFrames, id)
	}
	return l, nil
}

func (l *LFS) durable() bool { return l.cfg.Durable }

// BufferFrames reports how many page frames the segment buffer pins.
func (l *LFS) BufferFrames() int { return len(l.bufferFrames) }

// Stats returns a snapshot of the store's counters; FragsLive/FragsFree
// report live and dead page slots in on-disk segments.
func (l *LFS) Stats() stats.Swap {
	st := l.st
	var live, total int
	for i, s := range l.segs {
		if int32(i) == l.cur || s == nil {
			continue
		}
		live += s.live
		total += len(s.pages)
	}
	st.FragsLive = uint64(live)
	st.FragsFree = uint64(total - live)
	return st
}

// newSegment returns segment bookkeeping, recycling an object the cleaner
// freed when one is available; the make fallback runs only until the pool
// warms up.
func (l *LFS) newSegment() *lfsSegment {
	if n := len(l.segPool); n > 0 {
		s := l.segPool[n-1]
		l.segPool[n-1] = nil
		l.segPool = l.segPool[:n-1]
		s.pages = s.pages[:0]
		s.sums = s.sums[:0]
		s.live = 0
		s.seq = 0
		return s
	}
	s := &lfsSegment{pages: make([]PageKey, 0, l.pagesPerSeg)}
	if l.durable() {
		s.sums = make([]uint32, 0, l.pagesPerSeg)
	}
	return s
}

// allocSegment returns a free segment number, growing the log if allowed.
func (l *LFS) allocSegment() (int32, error) {
	if n := len(l.free); n > 0 {
		seg := l.free[n-1]
		l.free = l.free[:n-1]
		l.segs[seg] = l.newSegment()
		return seg, nil
	}
	if l.cfg.MaxSegments > 0 && len(l.segs) >= l.cfg.MaxSegments {
		// Log full. The live-copying cleaner cannot rescue us from here:
		// allocSegment can run while the just-flushed segment is still
		// current (Flush allocates its successor after writing it out), and
		// a cleaning pass at that moment would copy live pages into the full
		// current segment, overflowing its slot table onto its neighbour's
		// media addresses — latent accounting drift that CheckConsistency
		// cannot see because both tables stay self-consistent. Only segments
		// with no live pages can be freed without copying; anything else is
		// a genuine sizing error, surfaced as an error so the run dies
		// cleanly.
		if l.freeDead() {
			return l.allocSegment()
		}
		return 0, fmt.Errorf("swap: LFS log full (%d segments) and nothing cleanable without copying", len(l.segs))
	}
	l.segs = append(l.segs, l.newSegment())
	return int32(len(l.segs) - 1), nil
}

// freeDead frees on-disk segments with no live pages; they need no copying,
// so this is safe at any point, including mid-flush.
func (l *LFS) freeDead() bool {
	freed := false
	for i, s := range l.segs {
		if int32(i) == l.cur || s == nil || s.live > 0 || len(s.pages) == 0 {
			continue
		}
		l.segs[i] = nil
		l.segPool = append(l.segPool, s)
		l.free = append(l.free, int32(i))
		freed = true
	}
	return freed
}

// promote moves cleaned victim segments whose reuse barrier has been reached
// (every forwarded live page durable at or before sequence number upTo) onto
// the free list.
func (l *LFS) promote(upTo uint64) {
	kept := l.pending[:0]
	for _, p := range l.pending {
		if p.afterSeq <= upTo {
			l.free = append(l.free, p.seg)
		} else {
			kept = append(kept, p)
		}
	}
	l.pending = kept
}

// Write appends a page to the log buffer; a full buffer is flushed to disk
// as one sequential segment write.
func (l *LFS) Write(key PageKey, data []byte) error {
	if len(data) != l.cfg.PageSize {
		// Invariant: the VM layer always pages out whole pages.
		panic(fmt.Sprintf("swap: LFS.Write of %d bytes, want a whole page", len(data)))
	}
	seg := l.segs[l.cur]
	if len(seg.pages) >= l.pagesPerSeg {
		// The open segment's slot table is full but its flush failed (a
		// failed flush leaves the buffer intact for the error to propagate);
		// appending another slot would spill onto the next segment's media
		// addresses.
		return fmt.Errorf("swap: LFS segment buffer still full after a failed flush")
	}
	l.Invalidate(key) // supersede any previous copy (disk or staged)
	idx := int32(len(seg.pages))
	seg.pages = append(seg.pages, key)
	seg.live++
	l.loc[key] = lfsLoc{seg: l.cur, idx: idx}
	if l.durable() {
		seg.sums = append(seg.sums, crc32.ChecksumIEEE(data))
		copy(l.stage[l.headerBytes+int(idx)*l.cfg.PageSize:], data)
	} else {
		// Store the bytes at their eventual on-disk position now (platter
		// write-through); the device cost is charged at flush.
		l.file.WriteStage(l.dataOff(l.cur, idx), data)
	}
	l.curUsed++
	if l.curUsed >= l.pagesPerSeg {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	if !l.inClean {
		l.st.PagesOut++
	}
	return nil
}

// Flush writes the partially or fully filled segment buffer to disk as one
// asynchronous sequential operation and opens a new segment. In the durable
// format the transfer includes the segment's header block, so header and
// data are committed — or torn — together.
func (l *LFS) Flush() error {
	if l.curUsed == 0 {
		return nil
	}
	if l.durable() {
		seg := l.segs[l.cur]
		seg.seq = l.seq
		lfsEncodeHeader(l.stage[:l.headerBytes], l.seq, seg, l.cfg.PageSize)
		n := l.headerBytes + l.curUsed*l.cfg.PageSize
		if _, err := l.file.RawWriteAsync(l.stage[:n], l.segOff(l.cur), n); err != nil {
			return err
		}
		l.promote(l.seq)
		l.seq++
	} else {
		n := l.curUsed * l.cfg.PageSize
		if _, err := l.file.RawWriteStaged(l.dataOff(l.cur, 0), n); err != nil {
			return err
		}
	}
	l.curUsed = 0
	cur, err := l.allocSegment()
	if err != nil {
		return err
	}
	l.cur = cur
	return l.maybeClean()
}

// Read fetches a page. Pages still in the segment buffer are served from
// memory (they have not left the machine yet); pages on disk cost one
// whole-page read.
func (l *LFS) Read(key PageKey, buf []byte) (bool, error) {
	pos, ok := l.loc[key]
	if !ok {
		return false, nil
	}
	if pos.seg == l.cur {
		if l.durable() {
			off := l.headerBytes + int(pos.idx)*l.cfg.PageSize
			copy(buf, l.stage[off:off+l.cfg.PageSize])
		} else {
			l.file.ReadStaged(l.dataOff(pos.seg, pos.idx), buf)
		}
		l.st.PagesIn++
		return true, nil
	}
	if err := l.file.RawRead(buf, l.dataOff(pos.seg, pos.idx), l.cfg.PageSize); err != nil {
		return false, err
	}
	l.st.PagesIn++
	return true, nil
}

// Has reports whether the store holds a copy of the page.
func (l *LFS) Has(key PageKey) bool {
	_, ok := l.loc[key]
	return ok
}

// Invalidate marks the page's copy dead.
func (l *LFS) Invalidate(key PageKey) {
	pos, ok := l.loc[key]
	if !ok {
		return
	}
	seg := l.segs[pos.seg]
	seg.pages[pos.idx] = lfsTombstone
	seg.live--
	delete(l.loc, key)
}

// maybeClean runs the segment cleaner when free segments run low.
func (l *LFS) maybeClean() error {
	if l.cfg.MaxSegments == 0 {
		// Generously sized log: clean only when garbage dominates, to bound
		// disk usage without constant copying.
		var dead int
		for i, s := range l.segs {
			if int32(i) != l.cur && s != nil {
				dead += len(s.pages) - s.live
			}
		}
		if dead < 4*l.pagesPerSeg {
			return nil
		}
	} else if len(l.free) >= l.cfg.CleanReserve {
		return nil
	}
	_, err := l.clean()
	return err
}

// clean copies the live pages of the emptiest on-disk segments forward into
// the log and frees those segments. This is the paper's warning made
// concrete: swap segments stay relatively live, so cleaning copies a lot.
// A device error aborts the pass: segments already processed stay freed,
// the victim being copied keeps its remaining live pages.
//
// In the durable format a victim is not freed immediately: its media image
// is the only durable copy of its forwarded pages until the flush carrying
// them completes, so the victim parks on the pending list and is promoted to
// the free list only once that flush's sequence number is on the media.
func (l *LFS) clean() (bool, error) {
	if l.inClean {
		return false, nil
	}
	l.inClean = true
	defer func() { l.inClean = false }()
	l.st.GCs++

	// Pick up to two victim segments — emptiest first, lowest segment
	// number on ties, never the current one. A selection scan replaces the
	// old collect-and-sort so a steady-state cleaning pass allocates
	// nothing.
	v0, v1 := int32(-1), int32(-1)
	for i, s := range l.segs {
		if int32(i) == l.cur || s == nil || len(s.pages) == 0 {
			continue
		}
		switch {
		case v0 < 0 || s.live < l.segs[v0].live:
			v0, v1 = int32(i), v0
		case v1 < 0 || s.live < l.segs[v1].live:
			v1 = int32(i)
		}
	}
	if v0 < 0 {
		return false, nil
	}
	if cap(l.copyBuf) < l.cfg.PageSize {
		l.copyBuf = make([]byte, l.cfg.PageSize)
	}
	buf := l.copyBuf[:l.cfg.PageSize]
	freed := false
	for _, v := range [...]int32{v0, v1} {
		if v < 0 {
			continue
		}
		seg := l.segs[v]
		if seg.live > 0 {
			// One sequential sweep reads the whole victim segment.
			n := len(seg.pages) * l.cfg.PageSize
			if cap(l.sweepBuf) < n {
				l.sweepBuf = make([]byte, n)
			}
			if err := l.file.RawRead(l.sweepBuf[:n], l.dataOff(v, 0), n); err != nil {
				return freed, err
			}
			for idx, key := range seg.pages {
				if key == lfsTombstone {
					continue
				}
				l.file.ReadStaged(l.dataOff(v, int32(idx)), buf)
				l.st.GCBytesCopied += uint64(l.cfg.PageSize)
				// Rewriting moves the page into the current buffer.
				if err := l.Write(key, buf); err != nil {
					return freed, err
				}
			}
		}
		l.segs[v] = nil
		l.segPool = append(l.segPool, seg)
		if l.durable() {
			bar := l.seq
			if l.curUsed == 0 && bar > 0 {
				// Everything forwarded from this victim is already durable.
				bar--
			}
			l.pending = append(l.pending, lfsPending{seg: v, afterSeq: bar})
		} else {
			l.free = append(l.free, v)
		}
		freed = true
	}
	if l.durable() {
		l.promote(l.seq - 1)
	}
	if l.cfg.Paranoid {
		if err := l.CheckConsistency(); err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// segOff is the media byte offset of segment seg in the swap file.
func (l *LFS) segOff(seg int32) int64 {
	return int64(seg) * int64(l.cfg.SegmentBytes)
}

// dataOff is the media byte offset of page idx of segment seg (past the
// header block in the durable format).
func (l *LFS) dataOff(seg, idx int32) int64 {
	return l.segOff(seg) + int64(l.headerBytes) + int64(idx)*int64(l.cfg.PageSize)
}

// CheckConsistency validates the location map against the segment tables.
func (l *LFS) CheckConsistency() error {
	for key, pos := range l.loc {
		if int(pos.seg) >= len(l.segs) || l.segs[pos.seg] == nil {
			return fmt.Errorf("swap: lfs %v points to freed segment %d", key, pos.seg)
		}
		seg := l.segs[pos.seg]
		if int(pos.idx) >= len(seg.pages) || seg.pages[pos.idx] != key {
			return fmt.Errorf("swap: lfs slot mismatch for %v", key)
		}
	}
	for i, seg := range l.segs {
		if seg == nil {
			continue
		}
		if len(seg.pages) > l.pagesPerSeg {
			return fmt.Errorf("swap: lfs segment %d holds %d slots, capacity %d", i, len(seg.pages), l.pagesPerSeg)
		}
		if l.durable() && len(seg.sums) != len(seg.pages) {
			return fmt.Errorf("swap: lfs segment %d has %d sums for %d slots", i, len(seg.sums), len(seg.pages))
		}
		live := 0
		for _, key := range seg.pages {
			if key == lfsTombstone {
				continue
			}
			live++
			if pos, ok := l.loc[key]; !ok || pos.seg != int32(i) {
				return fmt.Errorf("swap: lfs live slot for %v not in location map", key)
			}
		}
		if live != seg.live {
			return fmt.Errorf("swap: lfs segment %d live counter %d, recounted %d", i, seg.live, live)
		}
	}
	for _, p := range l.pending {
		if int(p.seg) < len(l.segs) && l.segs[p.seg] != nil {
			return fmt.Errorf("swap: lfs pending segment %d still registered", p.seg)
		}
	}
	return nil
}
