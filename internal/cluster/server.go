// Package cluster wires N simulated machines through the network device to
// one shared remote page server, all co-advancing on a single discrete-event
// kernel — the fleet version of the paper's diskless mobile scenario (§1,
// §6). The server carries its own compressed swap tier in front of its disk,
// contention shows up as queueing on the server's serial timeline, and
// machines under memory pressure migrate pages into siblings' donated memory
// before falling back to the server.
package cluster

import (
	"container/list"
	"time"

	"compcache/internal/sim"
)

// ServerConfig parameterizes the shared page server.
type ServerConfig struct {
	// PerOp is the server CPU time to handle one request (lookup, checksum,
	// tier bookkeeping).
	PerOp time.Duration

	// TierBytes is the capacity of the server's compressed swap tier: server
	// DRAM holding recently served pages in their compressed travel form.
	// Requests that hit the tier are served at CPU speed; misses and
	// capacity demotions go to the server disk. Zero disables the tier.
	TierBytes int64

	// DiskAccess is the per-operation latency of the server disk (seek plus
	// rotation, flattened — the server disk is the slow path by design).
	DiskAccess time.Duration

	// DiskBytesPerSec is the server disk bandwidth.
	DiskBytesPerSec float64
}

// DefaultServerConfig returns an RZ57-class server disk behind a 2-MByte
// compressed tier, with DECstation-class request handling.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		PerOp:           300 * time.Microsecond,
		TierBytes:       2 << 20,
		DiskAccess:      20 * time.Millisecond,
		DiskBytesPerSec: 2e6,
	}
}

// ServerStats counts what the server did.
type ServerStats struct {
	Ops       uint64 // requests admitted (including forwards)
	Forwards  uint64 // machine-to-machine forwards (no placement)
	TierHits  uint64 // reads served from the compressed tier
	TierMiss  uint64 // reads that went to the server disk
	Demotions uint64 // tier entries pushed to disk to make room
}

// tierEntry is one resident page of the server's compressed tier.
type tierEntry struct {
	addr  int64
	bytes int
}

// Server is the shared remote page server: one serial service timeline (the
// whole fleet queues on it), a compressed DRAM tier, and a disk timeline
// behind it. It implements netdev.RemoteEndpoint, so every machine's network
// device hands it each transfer's arrival instant and gets back the reply
// instant.
//
// All methods are called from kernel actor goroutines, which run one at a
// time in kernel dispatch order, so the server needs no locking and its
// timeline is deterministic at any host parallelism.
type Server struct {
	cfg      ServerConfig
	srvBusy  sim.Time // serial service timeline: the fleet queues here
	diskBusy sim.Time // server-disk timeline behind the tier
	lru      *list.List
	byAddr   map[int64]*list.Element
	free     []*tierEntry // demoted/released entries recycled by newTier
	tierUsed int64
	st       ServerStats
}

// newTier recycles a demoted tier entry, or allocates one while the
// freelist warms up — tierInsert sits on the fleet's paging hot path.
func (s *Server) newTier(addr int64, bytes int) *tierEntry {
	if n := len(s.free); n > 0 {
		ent := s.free[n-1]
		s.free = s.free[:n-1]
		ent.addr, ent.bytes = addr, bytes
		return ent
	}
	ent := new(tierEntry)
	ent.addr, ent.bytes = addr, bytes
	return ent
}

// NewServer builds an idle server.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		cfg:    cfg,
		lru:    list.New(),
		byAddr: make(map[int64]*list.Element),
	}
}

// Stats reports the server counters.
func (s *Server) Stats() ServerStats { return s.st }

// BusyUntil reports when the server's serial timeline drains.
func (s *Server) BusyUntil() sim.Time { return s.srvBusy }

// diskTime is the server-disk service time for one transfer.
func (s *Server) diskTime(bytes int) time.Duration {
	return s.cfg.DiskAccess + time.Duration(float64(bytes)/s.cfg.DiskBytesPerSec*float64(time.Second))
}

// Admit implements netdev.RemoteEndpoint: the request arrives at the server
// when the link finishes carrying it, queues behind every earlier request
// from the whole fleet, pays server CPU, and — when it addresses storage —
// the tier/disk cost of the placement or lookup. addr == -1 is a pure
// forward: the server relays bytes between machines without placing them.
func (s *Server) Admit(arrival sim.Time, addr int64, bytes int, write bool) sim.Time {
	s.st.Ops++
	start := arrival
	if s.srvBusy > start {
		start = s.srvBusy
	}
	done := start.Add(s.cfg.PerOp)
	switch {
	case addr == -1:
		s.st.Forwards++
	case write:
		s.tierInsert(addr, bytes, &done)
	default:
		if e, ok := s.byAddr[addr]; ok {
			s.st.TierHits++
			s.lru.MoveToFront(e)
		} else {
			// Tier miss: the read serializes behind the server disk, then
			// the page is promoted into the tier on its way out.
			s.st.TierMiss++
			dst := done
			if s.diskBusy > dst {
				dst = s.diskBusy
			}
			dst = dst.Add(s.diskTime(bytes))
			s.diskBusy = dst
			done = dst
			s.tierInsert(addr, bytes, &done)
		}
	}
	s.srvBusy = done
	return done
}

// tierInsert places (or refreshes) a page in the compressed tier, demoting
// the oldest entries to the server disk when capacity runs out. Demotion
// writes are asynchronous — they extend the disk timeline, which later
// misses queue behind, but not the current request.
func (s *Server) tierInsert(addr int64, bytes int, done *sim.Time) {
	if s.cfg.TierBytes <= 0 {
		// No tier: every placement goes straight to the server disk and the
		// writer waits for it.
		dst := *done
		if s.diskBusy > dst {
			dst = s.diskBusy
		}
		dst = dst.Add(s.diskTime(bytes))
		s.diskBusy = dst
		*done = dst
		return
	}
	if e, ok := s.byAddr[addr]; ok {
		ent := e.Value.(*tierEntry)
		s.tierUsed += int64(bytes) - int64(ent.bytes)
		ent.bytes = bytes
		s.lru.MoveToFront(e)
	} else {
		s.byAddr[addr] = s.lru.PushFront(s.newTier(addr, bytes))
		s.tierUsed += int64(bytes)
	}
	for s.tierUsed > s.cfg.TierBytes && s.lru.Len() > 1 {
		oldest := s.lru.Back()
		ent := oldest.Value.(*tierEntry)
		s.lru.Remove(oldest)
		delete(s.byAddr, ent.addr)
		s.tierUsed -= int64(ent.bytes)
		s.free = append(s.free, ent)
		s.st.Demotions++
		s.diskBusy = maxTime(s.diskBusy, *done).Add(s.diskTime(ent.bytes))
	}
}

// Release drops a tier entry whose page was invalidated (no I/O: the entry
// is simply forgotten).
func (s *Server) Release(addr int64) {
	if e, ok := s.byAddr[addr]; ok {
		ent := e.Value.(*tierEntry)
		s.lru.Remove(e)
		delete(s.byAddr, addr)
		s.tierUsed -= int64(ent.bytes)
		s.free = append(s.free, ent)
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
