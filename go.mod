module compcache

go 1.22
