package lint

// snapcover: a SnapshotTo/RestoreFrom pair must cover every stored field
// of its receiver. The crash-consistency layer (internal/snap) trusts the
// pair to round-trip the component's whole state; a field added to vm or
// swap state but never serialized silently drifts after recovery — the
// snapshot "succeeds", the restore "succeeds", and the first divergence
// shows up as a corrupted replay three layers away. Genuinely derived or
// transient fields (recomputed indexes, wiring to sibling components,
// scratch buffers) opt out with a reasoned directive on the field line:
//
//	byStart map[int64]int //cclint:ignore snapcover -- derived: rebuilt from extents on restore
//
// The analyzer pairs methods by shape — SnapshotTo with a parameter from
// an internal/snap package, RestoreFrom likewise — then walks everything
// reachable from each method (the helpers a deep snapshot delegates to
// count: field reads in a helper called by SnapshotTo cover the field).
// A field must be referenced on the snapshot side AND on the restore
// side; each missing side is its own finding, positioned at the field
// declaration so the directive lands where the fix belongs.
// Function-typed fields are exempt — a callback cannot be serialized,
// so a directive there would carry no information.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SnapCover reports struct fields missed by a SnapshotTo/RestoreFrom pair.
type SnapCover struct{}

// Name implements Analyzer.
func (SnapCover) Name() string { return "snapcover" }

// Doc implements Analyzer.
func (SnapCover) Doc() string {
	return "every stored field of a SnapshotTo/RestoreFrom type must be serialized, restored, or carry a reasoned ignore"
}

// Severity implements Analyzer.
func (SnapCover) Severity() Severity { return SevError }

// Check implements Analyzer.
func (sc SnapCover) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil || pkg.Mod.Graph == nil {
		return nil
	}
	var out []Diagnostic
	for _, pair := range snapPairs(pkg) {
		st, ok := pair.recv.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		snapRefs := fieldsReachedFrom(pkg.Mod, pair.snapshot)
		restRefs := fieldsReachedFrom(pkg.Mod, pair.restore)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" {
				continue
			}
			// Function-typed fields (hooks, callbacks, frame sources) can
			// never be serialized; requiring an ignore there would say
			// nothing. Everything else must be covered or explained.
			if _, isFunc := f.Type().Underlying().(*types.Signature); isFunc {
				continue
			}
			if !snapRefs[f] {
				out = append(out, diagPos(pkg, sc.Name(), f.Pos(),
					"field %s.%s is never written by %s; snapshot it or mark it //cclint:ignore snapcover -- <reason>",
					pair.recv.Obj().Name(), f.Name(), pair.snapshot.Name()))
			}
			if !restRefs[f] {
				out = append(out, diagPos(pkg, sc.Name(), f.Pos(),
					"field %s.%s is never restored by %s; restore it or mark it //cclint:ignore snapcover -- <reason>",
					pair.recv.Obj().Name(), f.Name(), pair.restore.Name()))
			}
		}
	}
	return out
}

// snapPair is one type with both halves of the persistence contract.
type snapPair struct {
	recv     *types.Named
	snapshot *types.Func
	restore  *types.Func
}

// snapPairs finds the package's types carrying both SnapshotTo and
// RestoreFrom with an internal/snap parameter, in declaration order.
func snapPairs(pkg *Package) []snapPair {
	var out []snapPair
	scope := pkg.Types.Scope()
	// Scope iteration order is sorted by name, which is deterministic;
	// findings are re-sorted by position at the Run level anyway.
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		snap := snapMethod(named, "SnapshotTo")
		rest := snapMethod(named, "RestoreFrom")
		if snap != nil && rest != nil {
			out = append(out, snapPair{recv: named, snapshot: snap, restore: rest})
		}
	}
	return out
}

// snapMethod returns the named type's method with the given name if its
// first parameter comes from an internal/snap package.
func snapMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != name {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 0 {
			return nil
		}
		if n, ok := deref(sig.Params().At(0).Type()).(*types.Named); ok {
			if p := n.Obj().Pkg(); p != nil && pathHasSuffix(p.Path(), "internal/snap") {
				return m
			}
		}
		return nil
	}
	return nil
}

// fieldsReachedFrom walks the bodies of every module function reachable
// from the method and collects each struct field it references — plain
// selections, composite-literal keys, and methods promoted from embedded
// fields all count.
func fieldsReachedFrom(mod *Module, from *types.Func) map[*types.Var]bool {
	g := mod.Graph
	refs := make(map[*types.Var]bool)
	seen := map[*types.Func]bool{from: true}
	frontier := []*types.Func{from}
	for len(frontier) > 0 {
		var next []*types.Func
		for _, fn := range frontier {
			n := g.Node(fn)
			if n == nil {
				continue
			}
			if n.Decl != nil && n.Decl.Body != nil {
				collectFieldRefs(mod.Info, n.Decl.Body, refs)
			}
			for _, e := range n.Out {
				if !seen[e.Callee] {
					seen[e.Callee] = true
					next = append(next, e.Callee)
				}
			}
		}
		frontier = next
	}
	return refs
}

// collectFieldRefs records every struct field referenced in a body.
func collectFieldRefs(info *types.Info, body ast.Node, refs map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s, ok := info.Selections[n]; ok {
				// Record every field on the selection path: x.embedded.f
				// covers the embedded field too, as does a promoted
				// method call x.m() reached through it. For method
				// selections the final index names the method, not a
				// field, so it is skipped.
				idxs := s.Index()
				if s.Kind() != types.FieldVal {
					idxs = idxs[:len(idxs)-1]
				}
				t := s.Recv()
				for _, idx := range idxs {
					st, ok := deref(t).Underlying().(*types.Struct)
					if !ok {
						break
					}
					f := st.Field(idx)
					refs[f] = true
					t = f.Type()
				}
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
					refs[v] = true
				}
			}
		}
		return true
	})
}

// diagPos is diag for findings anchored to a position rather than a
// node — snapcover points at field declarations, which analyzers do not
// hold AST nodes for.
func diagPos(pkg *Package, name string, p token.Pos, format string, args ...any) Diagnostic {
	pos := pkg.Fset.Position(p)
	return Diagnostic{
		Analyzer: name,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}
