// Package runner fans independent experiment runs out across worker
// goroutines while keeping the results deterministic.
//
// Every experiment in this reproduction builds a fresh simulated machine
// with its own virtual clock, so runs are independent by construction and
// their results depend only on their inputs, never on host scheduling. The
// runner exploits that: it dispatches indexes to a small worker pool and
// slots each result by index, so a parallel sweep produces byte-identical
// output to a serial one. Callers are responsible for giving each call its
// own mutable state (workload.Clone exists for exactly this).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism resolves a worker-count knob: values > 0 are used as given,
// and anything else selects runtime.GOMAXPROCS(0), so option structs can
// leave the knob zero for "use every core".
func Parallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every index in [0, n) using at most workers
// concurrent goroutines and returns the results slotted by index, so the
// output order never depends on scheduling. Each call must be independent:
// it receives only its index and must not share mutable state with other
// calls.
//
// Errors are aggregated with errors.Join, each annotated with its index;
// partial results are kept (the returned slice always has n slots, holding
// the zero value at failed or skipped indexes). After the first failure or
// a context cancellation no new indexes are dispatched, but in-flight calls
// run to completion. workers <= 1 runs every index serially on the calling
// goroutine.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("run %d: %w", i, err)
				break
			}
			r, err := fn(ctx, i)
			if err != nil {
				errs[i] = fmt.Errorf("run %d: %w", i, err)
				break
			}
			results[i] = r
		}
		return results, errors.Join(errs...)
	}

	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("run %d: %w", i, err)
					failed.Store(true)
					return
				}
				r, err := fn(ctx, i)
				if err != nil {
					errs[i] = fmt.Errorf("run %d: %w", i, err)
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
