package swap

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"compcache/internal/disk"
	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/sim"
)

// fuzzLFSConfig is the geometry every fuzz input is mounted under: 4-page
// segments keep images small enough for the fuzzer to mutate meaningfully.
func fuzzLFSConfig() LFSConfig {
	return LFSConfig{PageSize: 4096, SegmentBytes: 4 * 4096, Durable: true, Paranoid: true}
}

// durableLFSImage builds a genuine post-crash media image: a durable LFS
// populated with overwrites and invalidations (so the log holds stale and
// dead records), flushed mid-stage, with the raw swap file bytes returned.
func durableLFSImage(tb testing.TB, npages int) []byte {
	tb.Helper()
	var clock sim.Clock
	d, err := disk.New(disk.RZ57(), &clock)
	if err != nil {
		tb.Fatal(err)
	}
	pool := mem.NewPool(64, 4096)
	fsys, err := fs.New(fs.Options{BlockSize: 4096}, d, &clock, pool)
	if err != nil {
		tb.Fatal(err)
	}
	l, err := NewLFS(fuzzLFSConfig(), fsys, pool)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < npages; i++ {
		key := PageKey{Seg: 1, Page: int32(i % (npages/2 + 1))} // overwrites
		if err := l.Write(key, page(int64(i), 4096)); err != nil {
			tb.Fatal(err)
		}
		if i%7 == 3 {
			l.Invalidate(PageKey{Seg: 1, Page: int32(i % 3)})
		}
	}
	if err := l.Flush(); err != nil {
		tb.Fatal(err)
	}
	file, err := fsys.Open("swap.lfs")
	if err != nil {
		tb.Fatal(err)
	}
	img := make([]byte, file.Size())
	if err := file.RawRead(img, 0, len(img)); err != nil {
		tb.Fatal(err)
	}
	return img
}

// FuzzRecoverLFS feeds arbitrary bytes to the mount-time log scan as the
// swap file's platter contents. Whatever the media holds — valid images,
// torn tails, bit flips, garbage — recovery must not panic, and any store it
// does return must pass the paranoid consistency check.
func FuzzRecoverLFS(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a log segment"))
	valid := durableLFSImage(f, 24)
	f.Add(valid)
	torn := append([]byte(nil), valid...)
	f.Add(torn[:len(torn)/2])
	flipped := append([]byte(nil), valid...)
	for i := 128; i < len(flipped); i += 997 {
		flipped[i] ^= 0x40
	}
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<20 {
			t.Skip("image larger than the simulated platter budget")
		}
		var clock sim.Clock
		d, err := disk.New(disk.RZ57(), &clock)
		if err != nil {
			t.Fatal(err)
		}
		pool := mem.NewPool(64, 4096)
		fsys, err := fs.New(fs.Options{BlockSize: 4096}, d, &clock, pool)
		if err != nil {
			t.Fatal(err)
		}
		if len(img) > 0 {
			// Raw device transfers are block-granular; zero-pad the tail. The
			// padding reads back as an unwritten region, like real media.
			n := (len(img) + 4095) &^ 4095
			buf := make([]byte, n)
			copy(buf, img)
			file := fsys.Create("swap.lfs")
			if err := file.RawWrite(buf, 0, n); err != nil {
				t.Fatal(err)
			}
		}
		l, rep, err := RecoverLFS(fuzzLFSConfig(), fsys, pool, nil, &clock)
		if err != nil {
			return // rejecting the image is a valid outcome; panicking is not
		}
		if l == nil || rep == nil {
			t.Fatal("nil store or report without an error")
		}
		if err := l.CheckConsistency(); err != nil {
			t.Fatalf("recovered store inconsistent: %v", err)
		}
		if rep.RecoveredSegments > rep.ScannedSegments {
			t.Fatalf("report claims %d recovered of %d scanned", rep.RecoveredSegments, rep.ScannedSegments)
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus when
// WRITE_FUZZ_CORPUS=1 is set; it only verifies the corpus exists otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRecoverLFS")
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("seed corpus missing at %s (regenerate with WRITE_FUZZ_CORPUS=1): %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := durableLFSImage(t, 24)
	torn := valid[:len(valid)/2]
	flipped := append([]byte(nil), valid...)
	for i := 128; i < len(flipped); i += 997 {
		flipped[i] ^= 0x40
	}
	seeds := map[string][]byte{
		"empty":        {},
		"garbage":      []byte("not a log segment"),
		"valid-image":  valid,
		"torn-half":    torn,
		"bit-flipped":  flipped,
		"short-header": valid[:100],
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
