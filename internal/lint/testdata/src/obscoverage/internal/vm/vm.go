// Package vm is the obscoverage golden fixture: an instrumented package
// (it imports internal/obs), so every exported method that advances the
// virtual clock must also reach a probe.
package vm

import (
	"time"

	"compcache/obscoverage/internal/obs"
	"compcache/obscoverage/internal/sim"
)

// VM is the fixture subsystem.
type VM struct {
	clock *sim.Clock
	bus   *obs.Bus
	hits  *obs.Counter
}

// BadTouch advances the clock but never probes: traced runs under-report
// exactly this method's work.
func (v *VM) BadTouch() { // want `BadTouch advances the virtual clock but no call path reaches an obs probe`
	v.clock.Advance(time.Millisecond)
}

// GoodTouch probes directly.
func (v *VM) GoodTouch() {
	v.clock.Advance(time.Millisecond)
	v.hits.Inc()
}

// GoodDeep earns both the charge and the probe through a helper.
func (v *VM) GoodDeep() {
	v.charge()
}

// charge advances and emits; unexported, so it is never flagged itself.
func (v *VM) charge() {
	v.clock.Advance(time.Millisecond)
	v.bus.Emit(obs.Event{Class: 1, Bytes: 4096})
}

// quiet advances without probing, but coverage is an exported-API rule.
func (v *VM) quiet() { v.clock.Advance(time.Microsecond) }

// Peek neither advances nor probes; nothing to cover.
func (v *VM) Peek() sim.Time { return v.clock.Now() }
