// Package policy implements the three-way memory trade of §4.2.
//
// Sprite traded physical memory dynamically between the virtual-memory
// system and the file system's buffer cache by comparing the ages of their
// least-recently-used items and reclaiming the older, "modulo an adjustment
// to favor retaining VM pages longer". With the compression cache there are
// three consumers, and "allocation of each of the three types of memory
// requires a comparison of the ages of the oldest pages for all three
// types"; the system "biases the ages to favor compressed pages over
// uncompressed pages and both of these over file cache blocks".
//
// An Allocator holds the shared frame pool and the registered consumers.
// When a frame is requested and the pool is empty, the allocator computes
// each consumer's effective age
//
//	effective = (now - oldestLastUse) * scale + bias
//
// and asks the consumer with the greatest effective age to release its
// oldest item, repeating until a frame is free. A larger scale or bias makes
// a consumer's memory look staler, so it is reclaimed sooner; the paper's
// preference order (file cache reclaimed first, compressed pages last) is
// the default Biases configuration.
package policy

import (
	"errors"
	"fmt"
	"time"

	"compcache/internal/mem"
	"compcache/internal/sim"
)

// ErrOutOfMemory reports that no registered consumer could free a frame — a
// true out-of-memory, which in a correctly sized simulation indicates a
// configuration or sizing bug rather than a runtime fault.
var ErrOutOfMemory = errors.New("policy: out of memory")

// Consumer is a subsystem holding page frames that the allocator can ask to
// give one back.
type Consumer interface {
	// Name identifies the consumer in diagnostics.
	Name() string

	// OldestAge reports the reference timestamp of the consumer's
	// least-recently-used item. ok is false when the consumer holds nothing
	// reclaimable.
	OldestAge() (sim.Time, bool)

	// ReleaseOldest releases the consumer's oldest item, freeing at least
	// one frame to the pool in the common case. It reports false when there
	// was nothing to release. A release is allowed to free no frame (for
	// example, a VM page may move into the compression cache, which absorbs
	// the freed frame to grow); the allocator keeps iterating. The error
	// reports a failure of work the release triggered (a writeback that hit
	// a device error, a fragment that failed verification).
	ReleaseOldest() (bool, error)
}

// Bias adjusts how stale one consumer's memory looks.
type Bias struct {
	// Scale multiplies the raw age; 1 is neutral, >1 makes the consumer's
	// items look older (reclaimed sooner), <1 younger (retained longer).
	Scale float64

	// Offset is added after scaling; positive means reclaimed sooner.
	Offset time.Duration
}

// Neutral is the identity bias.
var Neutral = Bias{Scale: 1}

// DefaultBiases reproduces the paper's preference order: the file cache is
// penalized (reclaimed first), uncompressed VM pages are neutral, and
// compressed pages are favored so the compression cache can grow during
// heavy paging.
func DefaultBiases() map[string]Bias {
	return map[string]Bias{
		"fs": {Scale: 1.0, Offset: 2 * time.Second},
		"vm": {Scale: 1.0},
		"cc": {Scale: 0.5, Offset: -2 * time.Second},
	}
}

// Allocator arbitrates the shared frame pool between consumers.
type Allocator struct {
	pool  *mem.Pool
	clock *sim.Clock

	consumers []Consumer
	biases    []Bias

	// Reserve is a number of frames kept free for the fault path; the
	// allocator starts reclaiming before the pool is bone dry so that
	// interleaved allocations (e.g. the compression cache growing while a
	// page is mid-eviction) cannot deadlock. Zero disables the reserve.
	Reserve int

	// Per-call scratch, reused so the fault path does not allocate. The
	// allocator is single-goroutine like the machine that owns it, and
	// AllocFrame/Rebalance/FreeOne never recurse into each other.
	excluded   []bool
	noProgress []int
}

// scratch returns the per-consumer exclusion and progress counters, cleared.
func (a *Allocator) scratch() (excluded []bool, noProgress []int) {
	if cap(a.excluded) < len(a.consumers) {
		a.excluded = make([]bool, len(a.consumers))
		a.noProgress = make([]int, len(a.consumers))
	}
	excluded = a.excluded[:len(a.consumers)]
	noProgress = a.noProgress[:len(a.consumers)]
	for i := range excluded {
		excluded[i] = false
		noProgress[i] = 0
	}
	return excluded, noProgress
}

// NewAllocator creates an allocator over pool.
func NewAllocator(pool *mem.Pool, clock *sim.Clock) *Allocator {
	return &Allocator{pool: pool, clock: clock}
}

// Register adds a consumer with the given bias.
func (a *Allocator) Register(c Consumer, b Bias) {
	if b.Scale == 0 {
		b.Scale = 1
	}
	a.consumers = append(a.consumers, c)
	a.biases = append(a.biases, b)
}

// noProgressLimit is how many consecutive releases a consumer may perform
// within one allocation without the pool gaining a frame before it is set
// aside for the rest of that allocation. A release that frees no frame is
// legitimate (a VM page migrating into the compression cache absorbs the
// frame it vacated), but it must not be allowed to starve the request.
const noProgressLimit = 8

// AllocFrame returns a frame for owner, reclaiming from the registered
// consumers as needed. It returns an error wrapping ErrOutOfMemory when no
// consumer can release anything, and propagates the first failure a
// release's triggered work reports (writeback device error, fragment
// verification failure).
func (a *Allocator) AllocFrame(owner mem.Owner) (mem.FrameID, error) {
	excluded, noProgress := a.scratch()
	// Generous bound: 4x the pool is far beyond any legitimate reclaim chain.
	maxTries := 4*a.pool.Total() + 16*(len(a.consumers)+1)
	for try := 0; try < maxTries; try++ {
		if id, ok := a.pool.Alloc(owner); ok {
			return id, nil
		}
		idx := a.pick(excluded)
		if idx < 0 {
			break
		}
		freeBefore := a.pool.FreeCount()
		released, err := a.consumers[idx].ReleaseOldest()
		if err != nil {
			return 0, err
		}
		if !released {
			excluded[idx] = true
			continue
		}
		if a.pool.FreeCount() > freeBefore {
			noProgress[idx] = 0
			continue
		}
		if noProgress[idx]++; noProgress[idx] >= noProgressLimit {
			excluded[idx] = true
		}
	}
	return 0, fmt.Errorf("%w allocating for %v: pool %d frames, no consumer can free one",
		ErrOutOfMemory, owner, a.pool.Total())
}

// Rebalance releases frames until the pool holds at least the reserve,
// giving the fault path headroom. The machine calls it after servicing each
// fault.
func (a *Allocator) Rebalance() error {
	if a.Reserve <= 0 {
		return nil
	}
	excluded, noProgress := a.scratch()
	guard := 4*a.pool.Total() + 16
	for a.pool.FreeCount() < a.Reserve && guard > 0 {
		guard--
		idx := a.pick(excluded)
		if idx < 0 {
			return nil
		}
		freeBefore := a.pool.FreeCount()
		released, err := a.consumers[idx].ReleaseOldest()
		if err != nil {
			return err
		}
		if !released {
			excluded[idx] = true
			continue
		}
		if a.pool.FreeCount() > freeBefore {
			noProgress[idx] = 0
		} else if noProgress[idx]++; noProgress[idx] >= noProgressLimit {
			excluded[idx] = true
		}
	}
	return nil
}

// FreeOne performs a single policy-guided reclamation (the consumer with the
// greatest effective age releases its oldest item) and reports whether
// anything was released. Callers that want to make room for opportunistic
// insertions — e.g. pages prefetched by a clustered swap read — use it
// instead of AllocFrame so failure is non-fatal.
func (a *Allocator) FreeOne() (bool, error) {
	excluded, _ := a.scratch()
	for range a.consumers {
		idx := a.pick(excluded)
		if idx < 0 {
			return false, nil
		}
		released, err := a.consumers[idx].ReleaseOldest()
		if err != nil {
			return false, err
		}
		if released {
			return true, nil
		}
		excluded[idx] = true
	}
	return false, nil
}

// pick returns the index of the non-excluded consumer with the greatest
// effective age, or -1 when none qualifies.
func (a *Allocator) pick(excluded []bool) int {
	now := a.clock.Now()
	best := -1
	var bestEff float64
	for i, c := range a.consumers {
		if excluded[i] {
			continue
		}
		t, ok := c.OldestAge()
		if !ok {
			continue
		}
		eff := float64(now.Sub(t))*a.biases[i].Scale + float64(a.biases[i].Offset)
		if best == -1 || eff > bestEff {
			best, bestEff = i, eff
		}
	}
	return best
}
