// Command cczip compresses and decompresses real files with the library's
// codecs, block by block — a sanity tool for the LZRW1 implementation and a
// way to measure what a given file's pages would do inside the compression
// cache.
//
// Usage:
//
//	cczip [-codec lzrw1] [-block 4096] <input >output
//	cczip -d [-codec lzrw1] <input >output
//	cczip -stats [-codec lzrw1] [-block 4096] <file...>
//
// The stream format (3-byte length + compressed block) is a diagnostic
// format, not an archive format.
package main

import (
	"flag"
	"fmt"
	"os"

	"compcache/internal/compress"
)

func main() {
	codecName := flag.String("codec", "lzrw1", "codec: lzrw1, lzss, bdi, fpc, rle, null")
	blockSize := flag.Int("block", 4096, "block size (the paper's page size)")
	decompress := flag.Bool("d", false, "decompress stdin to stdout")
	statsMode := flag.Bool("stats", false, "report per-page compression of the named files")
	flag.Parse()

	codec, err := compress.Lookup(*codecName)
	if err != nil {
		fatal(err)
	}

	switch {
	case *statsMode:
		for _, name := range flag.Args() {
			if err := report(codec, *blockSize, name); err != nil {
				fatal(err)
			}
		}
	case *decompress:
		if _, _, err := compress.DecompressStream(codec, os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
	default:
		in, out, err := compress.CompressStream(codec, *blockSize, os.Stdin, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cczip: %d -> %d bytes (%.2f)\n", in, out, ratio(in, out))
	}
}

func report(codec compress.Codec, blockSize int, name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := compress.Analyze(codec, blockSize, 3, 4, f)
	if err != nil {
		return err
	}
	if rep.Blocks == 0 {
		fmt.Printf("%s: empty\n", name)
		return nil
	}
	fmt.Printf("%s: %d pages, ratio %.2f (%.1f%% fail the 4:3 retention threshold)\n",
		name, rep.Blocks, rep.Ratio(), 100*rep.FailFrac())
	return nil
}

func ratio(in, out int64) float64 {
	if in == 0 {
		return 1
	}
	return float64(out) / float64(in)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cczip:", err)
	os.Exit(1)
}
