package exp

import (
	"context"

	"compcache/internal/machine"
	"compcache/internal/runner"
	"compcache/internal/stats"
	"compcache/internal/workload"
)

// job is one (machine configuration, workload) measurement in a sweep.
type job struct {
	cfg machine.Config
	w   workload.Workload
}

// measureAll measures every job with up to workers concurrent machines
// (workers <= 0 means one per core, 1 forces serial) and returns the stats
// slotted by job index. Each run gets a fresh machine built with opts (the
// sweep's shared attachments, observability usually) and its own clone of
// the workload, so runs never share mutable state; because every machine is
// deterministic in virtual time, the results are byte-identical to a serial
// sweep regardless of workers.
func measureAll(workers int, jobs []job, opts ...machine.Option) ([]stats.Run, error) {
	return runner.Map(context.Background(), runner.Parallelism(workers), len(jobs),
		func(_ context.Context, i int) (stats.Run, error) {
			return workload.Measure(jobs[i].cfg, workload.Clone(jobs[i].w), opts...)
		})
}
