package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"compcache/internal/mem"
	"compcache/internal/sim"
	"compcache/internal/swap"
)

func newTestCache(t *testing.T, frames int, params Params) (*Cache, *mem.Pool, *sim.Clock) {
	t.Helper()
	var clock sim.Clock
	pool := mem.NewPool(frames, 4096)
	c := New(params, &clock, pool)
	return c, pool, &clock
}

func key(p int32) swap.PageKey { return swap.PageKey{Seg: 1, Page: p} }

func blob(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// insert is a test helper for the common no-flush-error case.
func insert(t *testing.T, c *Cache, k swap.PageKey, data []byte, dirty bool) bool {
	t.Helper()
	ok, err := c.Insert(k, data, dirty)
	if err != nil {
		t.Fatalf("Insert(%v): %v", k, err)
	}
	return ok
}

// clean is a test helper asserting Clean itself does not fail.
func clean(t *testing.T, c *Cache) int {
	t.Helper()
	n, err := c.Clean()
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	return n
}

// releaseOldest is a test helper asserting ReleaseOldest does not fail.
func releaseOldest(t *testing.T, c *Cache) bool {
	t.Helper()
	ok, err := c.ReleaseOldest()
	if err != nil {
		t.Fatalf("ReleaseOldest: %v", err)
	}
	return ok
}

// noFlush is a FlushFunc that accepts everything.
func noFlush([]swap.Item) error { return nil }

func TestInsertAndFault(t *testing.T) {
	c, _, _ := newTestCache(t, 4, DefaultParams())
	data := blob(1, 1000)
	if !insert(t, c, key(0), data, true) {
		t.Fatal("Insert failed with free pool")
	}
	if !c.Has(key(0)) || c.Len() != 1 {
		t.Fatal("entry not indexed")
	}
	got, sum, dirty, ok := c.Fault(key(0))
	if !ok || !dirty || !bytes.Equal(got, data) {
		t.Fatalf("Fault ok=%v dirty=%v", ok, dirty)
	}
	if sum != Checksum(data) {
		t.Fatalf("Fault sum = %#x, want %#x", sum, Checksum(data))
	}
	// Fault retains the entry (§4.1's retained compressed copies): a second
	// fault hits again, and Drop removes it.
	if !c.Has(key(0)) {
		t.Fatal("entry removed by Fault")
	}
	if _, _, _, ok := c.Fault(key(0)); !ok {
		t.Fatal("second Fault missed")
	}
	c.Drop(key(0))
	if c.Has(key(0)) {
		t.Fatal("entry live after Drop")
	}
	st := c.Stats()
	if st.Inserts != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultMiss(t *testing.T) {
	c, _, _ := newTestCache(t, 2, DefaultParams())
	if _, _, _, ok := c.Fault(key(9)); ok {
		t.Fatal("Fault hit on empty cache")
	}
	if c.Stats().Misses != 1 {
		t.Fatal("miss not counted")
	}
}

func TestEntriesSpanFrames(t *testing.T) {
	c, _, _ := newTestCache(t, 4, DefaultParams())
	// Three 3000-byte entries: 9108 bytes of footprint in 4072-byte usable
	// frames must span and use 3 frames.
	for i := int32(0); i < 3; i++ {
		if !insert(t, c, key(i), blob(int64(i), 3000), true) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if c.FrameCount() != 3 {
		t.Fatalf("FrameCount = %d, want 3", c.FrameCount())
	}
	for i := int32(0); i < 3; i++ {
		got, _, _, ok := c.Fault(key(i))
		if !ok || !bytes.Equal(got, blob(int64(i), 3000)) {
			t.Fatalf("entry %d corrupted", i)
		}
	}
	// Spanning entries stay live across faults.
	if c.Len() != 3 {
		t.Fatalf("Len = %d after faults, want 3", c.Len())
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFailsWhenPoolExhausted(t *testing.T) {
	c, pool, _ := newTestCache(t, 1, DefaultParams())
	if !insert(t, c, key(0), blob(1, 3000), true) {
		t.Fatal("first insert should succeed")
	}
	// Pool is now empty; an insert needing a new frame must fail without
	// side effects.
	if insert(t, c, key(1), blob(2, 3000), true) {
		t.Fatal("insert succeeded with exhausted pool")
	}
	if c.Has(key(1)) {
		t.Fatal("failed insert left an entry")
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFramesCap(t *testing.T) {
	params := DefaultParams()
	params.MaxFrames = 2
	c, _, _ := newTestCache(t, 8, params)
	var inserted int32
	for i := int32(0); i < 8; i++ {
		if !insert(t, c, key(i), blob(int64(i), 3000), true) {
			break
		}
		inserted++
	}
	if c.FrameCount() > 2 {
		t.Fatalf("cache grew to %d frames despite MaxFrames=2", c.FrameCount())
	}
	if inserted == 0 || inserted > 3 {
		t.Fatalf("inserted %d entries into a 2-frame cache", inserted)
	}
}

func TestOversizeEntryPanics(t *testing.T) {
	c, _, _ := newTestCache(t, 4, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("oversize insert did not panic")
		}
	}()
	c.Insert(key(0), blob(1, 5000), true)
}

func TestCleanMarksEntriesAndFlushes(t *testing.T) {
	c, _, _ := newTestCache(t, 8, DefaultParams())
	var flushed []swap.Item
	c.SetHooks(func(items []swap.Item) error { flushed = append(flushed, items...); return nil }, nil)
	for i := int32(0); i < 4; i++ {
		insert(t, c, key(i), blob(int64(i), 1000), true)
	}
	if c.DirtyBytes() == 0 {
		t.Fatal("no dirty bytes after dirty inserts")
	}
	n := clean(t, c)
	if n != 4 {
		t.Fatalf("Clean cleaned %d entries, want 4", n)
	}
	if len(flushed) != 4 {
		t.Fatalf("flush saw %d items", len(flushed))
	}
	for _, it := range flushed {
		if it.Sum != Checksum(it.Data) {
			t.Fatalf("flushed item %v carries wrong checksum", it.Key)
		}
	}
	if c.DirtyBytes() != 0 {
		t.Fatalf("dirty bytes = %d after Clean", c.DirtyBytes())
	}
	if clean(t, c) != 0 {
		t.Fatal("second Clean found work")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanBatchBounded(t *testing.T) {
	params := DefaultParams()
	params.CleanBatchBytes = 4096
	c, _, _ := newTestCache(t, 16, params)
	c.SetHooks(noFlush, nil)
	for i := int32(0); i < 10; i++ {
		insert(t, c, key(i), blob(int64(i), 2000), true)
	}
	n := clean(t, c)
	// 2036-byte footprints: the batch passes 4096 bytes after 3 entries.
	if n < 2 || n > 3 {
		t.Fatalf("Clean batch = %d entries, want 2-3", n)
	}
}

func TestCleanWithoutHook(t *testing.T) {
	c, _, _ := newTestCache(t, 4, DefaultParams())
	insert(t, c, key(0), blob(1, 100), true)
	if clean(t, c) != 0 {
		t.Fatal("Clean without a flush hook should do nothing")
	}
}

func TestReleaseOldestDropsCleanEntries(t *testing.T) {
	c, pool, _ := newTestCache(t, 8, DefaultParams())
	var dropped []swap.PageKey
	c.SetHooks(noFlush, func(k swap.PageKey) { dropped = append(dropped, k) })
	for i := int32(0); i < 3; i++ {
		insert(t, c, key(i), blob(int64(i), 1200), false) // clean inserts
	}
	frames := c.FrameCount()
	if !releaseOldest(t, c) {
		t.Fatal("ReleaseOldest failed with clean entries")
	}
	if c.FrameCount() != frames-1 {
		t.Fatal("frame not released")
	}
	if len(dropped) == 0 {
		t.Fatal("drop hook not called for live clean entries")
	}
	for _, k := range dropped {
		if c.Has(k) {
			t.Fatalf("dropped entry %v still live", k)
		}
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseOldestCleansDirtyFirst(t *testing.T) {
	c, _, _ := newTestCache(t, 8, DefaultParams())
	flushes := 0
	c.SetHooks(func(items []swap.Item) error { flushes += len(items); return nil }, nil)
	insert(t, c, key(0), blob(1, 1000), true)
	if !releaseOldest(t, c) {
		t.Fatal("ReleaseOldest failed")
	}
	if flushes == 0 {
		t.Fatal("dirty entry reclaimed without flushing")
	}
	if c.FrameCount() != 0 {
		t.Fatalf("FrameCount = %d", c.FrameCount())
	}
}

func TestReleaseOldestNoFlushHookNoDirtyReclaim(t *testing.T) {
	c, _, _ := newTestCache(t, 4, DefaultParams())
	insert(t, c, key(0), blob(1, 1000), true)
	if releaseOldest(t, c) {
		t.Fatal("dirty frame reclaimed with no way to persist it")
	}
}

func TestMidReclaim(t *testing.T) {
	c, _, _ := newTestCache(t, 8, DefaultParams())
	c.SetHooks(noFlush, nil)
	// Frame 0 gets a dirty entry; frame 1 a clean one. Fill each frame
	// exactly so entries do not span.
	usable := 4096 - 24 - 36
	insert(t, c, key(0), blob(1, usable), true)  // fills frame 0, dirty
	insert(t, c, key(1), blob(2, usable), false) // fills frame 1, clean
	if c.FrameCount() != 2 {
		t.Fatalf("FrameCount = %d, want 2", c.FrameCount())
	}
	// Prevent cleaning from making frame 0 reclaimable by removing the
	// flush hook.
	c.SetHooks(nil, nil)
	if !releaseOldest(t, c) {
		t.Fatal("ReleaseOldest failed")
	}
	if c.Stats().MidReclaims != 1 {
		t.Fatalf("MidReclaims = %d, want 1", c.Stats().MidReclaims)
	}
	if !c.Has(key(0)) || c.Has(key(1)) {
		t.Fatal("wrong entry reclaimed")
	}
}

func TestOldestAge(t *testing.T) {
	c, _, clock := newTestCache(t, 8, DefaultParams())
	if _, ok := c.OldestAge(); ok {
		t.Fatal("OldestAge on empty cache")
	}
	insert(t, c, key(0), blob(1, 100), true)
	t0 := clock.Now()
	clock.Advance(1000)
	insert(t, c, key(1), blob(2, 100), true)
	age, ok := c.OldestAge()
	if !ok || age != t0 {
		t.Fatalf("OldestAge = %v ok=%v, want %v", age, ok, t0)
	}
	// Kill the oldest; age advances to the second entry.
	c.Drop(key(0))
	age, ok = c.OldestAge()
	if !ok || age <= t0 {
		t.Fatalf("OldestAge after fault = %v ok=%v", age, ok)
	}
}

func TestReplaceExistingEntry(t *testing.T) {
	c, _, _ := newTestCache(t, 8, DefaultParams())
	insert(t, c, key(0), blob(1, 500), false)
	insert(t, c, key(0), blob(2, 500), true)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	got, sum, dirty, ok := c.Fault(key(0))
	if !ok || !dirty || !bytes.Equal(got, blob(2, 500)) {
		t.Fatal("replace kept stale data")
	}
	if sum != Checksum(blob(2, 500)) {
		t.Fatal("replace kept stale checksum")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDrop(t *testing.T) {
	c, _, _ := newTestCache(t, 8, DefaultParams())
	insert(t, c, key(0), blob(1, 500), true)
	c.Drop(key(0))
	if c.Has(key(0)) {
		t.Fatal("entry live after Drop")
	}
	c.Drop(key(0)) // idempotent
	if c.DirtyBytes() != 0 || c.LiveBytes() != 0 {
		t.Fatal("byte accounting wrong after Drop")
	}
}

func TestReclaimableFrames(t *testing.T) {
	c, _, _ := newTestCache(t, 8, DefaultParams())
	usable := 4096 - 24 - 36
	insert(t, c, key(0), blob(1, usable), false)
	insert(t, c, key(1), blob(2, usable), true)
	if got := c.ReclaimableFrames(); got != 1 {
		t.Fatalf("ReclaimableFrames = %d, want 1", got)
	}
}

// Churn test: random inserts, faults, drops, cleans and reclaims keep the
// accounting consistent, preserve data integrity, and conserve frames.
func TestCacheChurn(t *testing.T) {
	c, pool, clock := newTestCache(t, 16, DefaultParams())
	shadow := make(map[swap.PageKey][]byte)
	shadowDirty := make(map[swap.PageKey]bool)
	c.SetHooks(
		noFlush,
		func(k swap.PageKey) {
			delete(shadow, k)
			delete(shadowDirty, k)
		})
	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 3000; step++ {
		clock.Advance(sim.Duration(rng.Intn(1000)))
		k := key(int32(rng.Intn(30)))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			data := blob(rng.Int63(), rng.Intn(3000)+1)
			dirty := rng.Intn(2) == 0
			if insert(t, c, k, data, dirty) {
				shadow[k] = data
				shadowDirty[k] = dirty
			}
		case 4, 5, 6:
			got, sum, dirty, ok := c.Fault(k)
			want, live := shadow[k]
			if ok != live {
				t.Fatalf("step %d: Fault(%v) ok=%v, want %v", step, k, ok, live)
			}
			if ok {
				if !bytes.Equal(got, want) {
					t.Fatalf("step %d: Fault(%v) data mismatch", step, k)
				}
				if sum != Checksum(want) {
					t.Fatalf("step %d: Fault(%v) checksum mismatch", step, k)
				}
				if dirty != shadowDirty[k] {
					t.Fatalf("step %d: Fault(%v) dirty=%v, want %v", step, k, dirty, shadowDirty[k])
				}
				// Entries are retained by Fault; emulate the machine's
				// Dirtied hook by dropping half the time.
				if rng.Intn(2) == 0 {
					c.Drop(k)
					delete(shadow, k)
					delete(shadowDirty, k)
				}
			}
		case 7:
			c.Drop(k)
			delete(shadow, k)
			delete(shadowDirty, k)
		case 8:
			n := clean(t, c)
			if n > 0 {
				for sk := range shadowDirty {
					if c.Has(sk) {
						// Cleaned entries are no longer dirty; our shadow
						// cannot see which were cleaned, so just clear all
						// dirtiness hints (Fault dirty checks only apply to
						// still-dirty entries).
						shadowDirty[sk] = false
					}
				}
				// Resync dirty flags from the cache's view.
				for sk := range shadow {
					if e, ok := c.entries[sk]; ok {
						shadowDirty[sk] = e.Dirty
					}
				}
			}
		case 9:
			releaseOldest(t, c)
		}
		if step%100 == 0 {
			if err := c.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := pool.CheckConservation(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Every surviving entry is intact.
	for k, want := range shadow {
		if !c.Has(k) {
			continue // dropped by reclaim
		}
		got, _, _, ok := c.Fault(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("final: entry %v corrupted", k)
		}
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkToZero(t *testing.T) {
	c, pool, _ := newTestCache(t, 8, DefaultParams())
	c.SetHooks(noFlush, nil)
	for i := int32(0); i < 6; i++ {
		insert(t, c, key(i), blob(int64(i), 2000), true)
	}
	for releaseOldest(t, c) {
	}
	if c.FrameCount() != 0 || c.Len() != 0 {
		t.Fatalf("cache not empty: %d frames, %d entries", c.FrameCount(), c.Len())
	}
	if pool.FreeCount() != pool.Total() {
		t.Fatal("frames leaked")
	}
}

func TestPrefillAndMinFrames(t *testing.T) {
	params := DefaultParams()
	params.MaxFrames = 4
	params.MinFrames = 4
	c, pool, _ := newTestCache(t, 8, params)
	c.SetHooks(noFlush, nil)
	c.Prefill(4)
	if c.FrameCount() != 4 {
		t.Fatalf("FrameCount after Prefill = %d", c.FrameCount())
	}
	if pool.OwnedBy(mem.CC) != 4 {
		t.Fatalf("pool CC frames = %d", pool.OwnedBy(mem.CC))
	}
	// A fixed cache never shrinks...
	if releaseOldest(t, c) {
		t.Fatal("fixed cache released a frame")
	}
	// ...but keeps absorbing entries by recycling its own frames.
	for i := int32(0); i < 40; i++ {
		if !insert(t, c, key(i), blob(int64(i), 2000), false) {
			t.Fatalf("insert %d failed in fixed cache", i)
		}
		if c.FrameCount() != 4 {
			t.Fatalf("fixed cache drifted to %d frames", c.FrameCount())
		}
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefillExceedingPoolPanics(t *testing.T) {
	c, _, _ := newTestCache(t, 2, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("Prefill beyond the pool did not panic")
		}
	}()
	c.Prefill(5)
}

func TestCapRecyclingCleansDirty(t *testing.T) {
	params := DefaultParams()
	params.MaxFrames = 2
	c, _, _ := newTestCache(t, 8, params)
	c.SetHooks(noFlush, nil)
	// Fill the capped cache with dirty entries, then keep inserting: the
	// recycler must clean the oldest dirty frame and rotate.
	usable := 4096 - 24 - 36
	for i := int32(0); i < 10; i++ {
		if !insert(t, c, key(i), blob(int64(i), usable), true) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if c.FrameCount() > 2 {
		t.Fatalf("cache exceeded cap: %d", c.FrameCount())
	}
	if c.Stats().CleanWrites == 0 {
		t.Fatal("recycling never cleaned dirty frames")
	}
}

// A flush hook that fails must leave the batch dirty, make the insert that
// needed the room fail cleanly, and conserve frames.
func TestInsertFlushFailureLeavesStateConsistent(t *testing.T) {
	params := DefaultParams()
	params.MaxFrames = 2
	c, pool, _ := newTestCache(t, 8, params)
	flushErr := &failingFlush{}
	c.SetHooks(flushErr.flush, nil)
	usable := 4096 - 24 - 36
	insert(t, c, key(0), blob(1, usable), true)
	insert(t, c, key(1), blob(2, usable), true)
	dirtyBefore := c.DirtyBytes()
	flushErr.fail = true
	ok, err := c.Insert(key(2), blob(3, usable), true)
	if ok || err == nil {
		t.Fatalf("Insert with failing flush: ok=%v err=%v", ok, err)
	}
	if c.DirtyBytes() != dirtyBefore {
		t.Fatalf("dirty bytes changed across failed flush: %d -> %d", dirtyBefore, c.DirtyBytes())
	}
	if c.Has(key(2)) {
		t.Fatal("failed insert left an entry")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := pool.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Once the device heals, the same batch flushes and the insert goes
	// through.
	flushErr.fail = false
	ok, err = c.Insert(key(2), blob(3, usable), true)
	if !ok || err != nil {
		t.Fatalf("Insert after heal: ok=%v err=%v", ok, err)
	}
}

type failingFlush struct{ fail bool }

func (f *failingFlush) flush([]swap.Item) error {
	if f.fail {
		return errTestFlush
	}
	return nil
}

var errTestFlush = &testFlushError{}

type testFlushError struct{}

func (*testFlushError) Error() string { return "test: flush device error" }

// Property: for any sequence of sized inserts, byte accounting and frame
// occupancy stay consistent and no insert both fails and mutates.
func TestInsertAccountingProperty(t *testing.T) {
	f := func(sizes []uint16, dirt []bool) bool {
		c, pool, _ := newTestCacheQuick()
		c.SetHooks(noFlush, nil)
		for i, sz := range sizes {
			n := int(sz)%3000 + 1
			dirty := i < len(dirt) && dirt[i]
			before := c.Len()
			ok, err := c.Insert(key(int32(i)), blob(int64(i), n), dirty)
			if err != nil {
				return false
			}
			if !ok && c.Len() != before {
				return false
			}
			if c.CheckConsistency() != nil {
				return false
			}
		}
		return pool.CheckConservation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func newTestCacheQuick() (*Cache, *mem.Pool, *sim.Clock) {
	var clock sim.Clock
	pool := mem.NewPool(12, 4096)
	return New(DefaultParams(), &clock, pool), pool, &clock
}
