// Package kp is a golden fixture for the kernelproto analyzer: actor
// bodies armed through Kernel.Go/Bind/Schedule (and wrappers over them)
// must not touch the host scheduler, and the clean case shows the
// baton-respecting idiom.
package kp

import (
	"sync"
	"sync/atomic"

	"compcache/kernelproto/internal/sim"
)

// BadDirect arms a literal that spawns a raw goroutine and touches a
// channel right in the body.
func BadDirect(k *sim.Kernel, ch chan int) {
	k.Go(1, func() {
		go drain(ch) // want `actor body armed in BadDirect: spawns a raw goroutine outside the kernel baton \(BadDirect\)`
		ch <- 1      // want `actor body armed in BadDirect: sends on a channel outside the kernel baton \(BadDirect\)`
	})
}

// drain is reachable from the armed literal; its channel range is
// reported with the actor→violation chain.
func drain(ch chan int) {
	for range ch { // want `actor body armed in BadDirect: ranges over a channel outside the kernel baton \(BadDirect → kp\.drain\)`
	}
}

// BadNamed arms a declared function; the BFS roots at the function
// itself, and the root name in the message is still the armer caller.
func BadNamed(k *sim.Kernel) {
	k.Bind(2, lockStep)
}

// lockStep takes a mutex: the host scheduler leaks back in.
func lockStep() {
	var mu sync.Mutex
	mu.Lock()         // want `actor body armed in BadNamed: takes sync\.Mutex\.Lock outside the kernel baton \(lockStep\)`
	defer mu.Unlock() // want `actor body armed in BadNamed: takes sync\.Mutex\.Unlock outside the kernel baton \(lockStep\)`
}

// Cluster is the wrapper shape: Go forwards fn into the kernel from
// inside a closure, so the armer fixed point must absorb it even though
// the call graph drops the plain func-value call.
type Cluster struct{ k *sim.Kernel }

// Go arms fn through the kernel on the cluster's behalf.
func (c *Cluster) Go(id sim.ActorID, fn func()) {
	c.k.Go(id, func() { fn() })
}

// BadWrapped arms a body through the wrapper; the violation is found
// even though sim.Kernel.Go never sees this literal directly.
func BadWrapped(c *Cluster, done chan struct{}) {
	c.Go(3, func() {
		close(done) // want `actor body armed in BadWrapped: closes a channel outside the kernel baton \(BadWrapped\)`
	})
}

var ticks int64

// BadScheduled arms a timer body; the atomic in the callee is the
// violation.
func BadScheduled(k *sim.Kernel) {
	k.Schedule(10, 4, tick)
}

// tick bumps a counter with sync/atomic.
func tick(now sim.Time) {
	atomic.AddInt64(&ticks, 1) // want `actor body armed in BadScheduled: performs atomic AddInt64 outside the kernel baton \(tick\)`
}

// Good arms a body that stays on the baton: kernel waits and pooled
// scratch (sync.Pool never blocks) are the allowed primitives.
func Good(k *sim.Kernel, pool *sync.Pool) {
	k.Go(5, func() {
		buf := pool.Get().([]byte)
		k.Wait(5, 100)
		pool.Put(buf[:0])
	})
}
