// Package pipeline sits between the scoped packages and the codec, so the
// chains crosscredit must follow are genuinely interprocedural: the work
// and the credit both live two calls away from the exported entry points.
// pipeline itself is outside the analyzer's scope, so its own uncharged
// Process stays silent here — the finding belongs to whoever exports it.
package pipeline

import (
	"time"

	"compcache/crosscredit/internal/compress"
	"compcache/crosscredit/internal/sim"
)

// Codec is the dispatch seam the interface-resolution case calls through.
type Codec interface {
	Compress(p []byte) []byte
}

// Apply runs a codec through the interface; type-informed method-set
// resolution connects it to compress.LZ.Compress.
func Apply(c Codec, p []byte) []byte { return c.Compress(p) }

// Process does codec work with no clock credit anywhere on the chain.
func Process(p []byte) []byte {
	var z compress.LZ
	return z.Compress(p)
}

// ProcessCharged does the same work and charges the clock for it.
func ProcessCharged(clock *sim.Clock, p []byte) []byte {
	var z compress.LZ
	out := z.Compress(p)
	clock.Advance(time.Duration(len(p)))
	return out
}
