package compress

import (
	"encoding/binary"
	"fmt"
)

// Null is the identity codec: it stores blocks uncompressed with a 4-byte
// length header. It exists so the machinery of the compression cache can be
// exercised and benchmarked with zero compression benefit (the degenerate
// point of Figure 1 where the ratio is 1:1), and as the baseline codec for
// data types known to be incompressible.
type Null struct{}

// Name reports "null".
func (Null) Name() string { return "null" }

// MaxCompressedSize reports n+4 (length header plus the raw bytes).
func (Null) MaxCompressedSize(n int) int { return n + 4 }

// Compress appends a stored block to dst.
func (Null) Compress(dst, src []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(src)))
	dst = append(dst, hdr[:]...)
	return append(dst, src...)
}

// Decompress appends the stored bytes to dst.
func (Null) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("%w: short null block", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(src[:4])
	if int(n) != len(src)-4 {
		return nil, fmt.Errorf("%w: null block length %d, have %d bytes", ErrCorrupt, n, len(src)-4)
	}
	return append(dst, src[4:]...), nil
}

// RLE is a byte-level run-length codec. It is faster than LZRW1 but only
// effective on pages dominated by byte runs (zero-filled pages, sparse
// arrays). Together with LZRW1 and Null it demonstrates the per-data-type
// codec choice the paper's design calls for.
//
// Format: a flag byte (flagCompress/flagCopy as in LZRW1), then a sequence of
// (count, value) pairs for runs of 4 or more equal bytes, and literal spans
// encoded as (0x00, spanLen, bytes...). Counts are one byte (4..255); longer
// runs repeat. The stored fallback keeps worst-case expansion at one byte.
type RLE struct{}

const rleMinRun = 4

// Name reports "rle".
func (RLE) Name() string { return "rle" }

// MaxCompressedSize reports n+1 (stored fallback).
func (RLE) MaxCompressedSize(n int) int { return n + 1 }

// Compress appends the run-length-encoded form of src to dst.
func (RLE) Compress(dst, src []byte) []byte {
	base := len(dst)
	limit := base + len(src) + 1
	dst = append(dst, flagCompress)
	i := 0
	for i < len(src) {
		// Measure the run starting at i.
		run := 1
		for i+run < len(src) && src[i+run] == src[i] && run < 255 {
			run++
		}
		if run >= rleMinRun {
			dst = append(dst, byte(run), src[i])
			i += run
		} else {
			// Gather a literal span up to the next long run (or 255 bytes).
			start := i
			// Bound the span so that span length plus a short tail run never
			// exceeds the one-byte length field.
			for i < len(src) && i-start <= 255-rleMinRun {
				r := 1
				for i+r < len(src) && src[i+r] == src[i] && r < rleMinRun {
					r++
				}
				if r >= rleMinRun {
					break
				}
				i += r
			}
			dst = append(dst, 0x00, byte(i-start))
			dst = append(dst, src[start:i]...)
		}
		if len(dst) > limit {
			return storedBlock(dst[:base], src)
		}
	}
	if len(dst) > limit {
		return storedBlock(dst[:base], src)
	}
	return dst
}

// Decompress appends the decoded form of an RLE block to dst.
func (RLE) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrCorrupt)
	}
	flag, body := src[0], src[1:]
	switch flag {
	case flagCopy:
		return append(dst, body...), nil
	case flagCompress:
	default:
		return nil, fmt.Errorf("%w: bad flag byte %#x", ErrCorrupt, flag)
	}
	for i := 0; i < len(body); {
		switch c := body[i]; c {
		case 0x00:
			if i+2 > len(body) {
				return nil, fmt.Errorf("%w: truncated literal header", ErrCorrupt)
			}
			n := int(body[i+1])
			if i+2+n > len(body) {
				return nil, fmt.Errorf("%w: truncated literal span", ErrCorrupt)
			}
			dst = append(dst, body[i+2:i+2+n]...)
			i += 2 + n
		default:
			if i+2 > len(body) {
				return nil, fmt.Errorf("%w: truncated run", ErrCorrupt)
			}
			v := body[i+1]
			for j := 0; j < int(c); j++ {
				dst = append(dst, v)
			}
			i += 2
		}
	}
	return dst, nil
}
