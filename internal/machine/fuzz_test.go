package machine

import (
	"bytes"
	"testing"

	"compcache/internal/core"
	"compcache/internal/swap"
)

// fuzzFixture compresses one known page and returns everything needed to
// attempt a decompression of an arbitrary fragment against its checksum.
func fuzzFixture(tb testing.TB) (m *Machine, want, cdata []byte, sum uint32) {
	tb.Helper()
	m, err := New(Default(1 << 20).WithCC())
	if err != nil {
		tb.Fatal(err)
	}
	want = make([]byte, m.Config().PageSize)
	copy(want, bytes.Repeat([]byte("the compression cache "), 200))
	cdata = m.codecFor(0).Compress(nil, want)
	return m, want, cdata, core.Checksum(cdata)
}

// FuzzFragmentIntegrity checks the integrity invariant end to end: a
// corrupted compressed fragment must never silently decompress to wrong page
// contents. Every mutation is either rejected (checksum mismatch or codec
// error) or — in the astronomically unlikely event it passes both — must
// reproduce the original page byte for byte.
func FuzzFragmentIntegrity(f *testing.F) {
	_, _, cdata, _ := fuzzFixture(f)
	f.Add(append([]byte(nil), cdata...)) // identity: must succeed
	bitflip := append([]byte(nil), cdata...)
	bitflip[len(bitflip)/2] ^= 0x10
	f.Add(bitflip)
	f.Add(cdata[:len(cdata)/2])                 // truncated
	f.Add(append(append([]byte(nil), cdata...), // extended
		0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, frag []byte) {
		m, want, orig, sum := fuzzFixture(t)
		page := make([]byte, len(want))
		for i := range page {
			page[i] = 0xEE // stale contents that must never leak through
		}
		err := m.decompressInto(page, frag, sum, swap.PageKey{Seg: 0, Page: 0})
		if bytes.Equal(frag, orig) {
			if err != nil {
				t.Fatalf("pristine fragment rejected: %v", err)
			}
			if !bytes.Equal(page, want) {
				t.Fatal("pristine fragment decompressed to wrong contents")
			}
			return
		}
		if err == nil && !bytes.Equal(page, want) {
			t.Fatal("corrupted fragment silently decompressed to wrong page contents")
		}
		if err != nil && m.Faults().CorruptionsDetected == 0 {
			t.Fatal("rejection not counted as a detected corruption")
		}
	})
}
