package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Options is the one experiment-sizing knob set every registered experiment
// accepts. Individual experiments read the fields they care about and ignore
// the rest, so a single Options value can drive a whole `-run` list.
type Options struct {
	// Scale selects Small or Paper sizing (see Scale).
	Scale Scale

	// Seed overrides the experiment's built-in seed; 0 keeps the default, so
	// the registry reproduces the documented tables out of the box.
	Seed int64

	// Parallelism caps concurrent simulated machines (0 = one per core,
	// 1 = serial). Results are byte-identical at any value.
	Parallelism int

	// FaultRate restricts the fault sweep to one rate (plus the rate-0
	// baseline). Negative selects the built-in rate ladder. Only the faults
	// experiment reads it.
	FaultRate float64

	// HostTiming enables host-clock measurement columns (currently the codec
	// sweep's ns/op). Host timings are inherently nondeterministic, so they
	// are off by default and the affected columns print "-"; everything else
	// in the tables stays byte-identical at any Parallelism.
	HostTiming bool

	// TracePath, when non-empty, makes experiments that support a
	// machine-readable trace write one there (currently ext/fleet-sweep:
	// one JSON record per grid cell). The file contents are deterministic —
	// cells are written in grid order at any Parallelism.
	TracePath string
}

// DefaultOptions returns the options every experiment documents: built-in
// seeds and the full fault-rate ladder.
func DefaultOptions(s Scale) Options {
	return Options{Scale: s, FaultRate: -1}
}

// sizing maps the scale to the shared memory/working-set convention the
// ablation and extension sweeps use.
func (o Options) sizing() (memMB int, pages int32) {
	if o.Scale == Paper {
		return 6, 4096
	}
	return 1, 768
}

// seed returns the effective seed (the shared default 1 unless overridden).
func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// Result is what a registered experiment produces: one or more renderable
// tables. Concrete results (Fig3Result, Table1Result, ...) expose their
// richer structure too; Tables is the common denominator ccbench renders.
type Result interface {
	Tables() []*Table
}

// Tables makes a bare Table usable as a Result (the ablation and extension
// experiments each produce exactly one).
func (t *Table) Tables() []*Table { return []*Table{t} }

// Experiment is one runnable entry of the registry.
type Experiment interface {
	// Name is the registry key ("table1", "ablation/codec", ...). Group
	// prefixes before the slash ("ablation/", "ext/") are what the group
	// names in Resolve expand to.
	Name() string

	// Run executes the experiment. Implementations derive all sizing from
	// opts and must stay deterministic for a fixed (Scale, Seed).
	Run(ctx context.Context, opts Options) (Result, error)
}

// funcExp adapts a closure to the Experiment interface.
type funcExp struct {
	name string
	run  func(ctx context.Context, opts Options) (Result, error)
}

func (f funcExp) Name() string { return f.name }
func (f funcExp) Run(ctx context.Context, opts Options) (Result, error) {
	return f.run(ctx, opts)
}

var registry = map[string]Experiment{}

// Register adds an experiment to the registry. Duplicate names are a
// programming error.
func Register(e Experiment) {
	if _, dup := registry[e.Name()]; dup {
		// Invariant: registration happens once, at package init.
		panic(fmt.Sprintf("exp: duplicate experiment %q", e.Name()))
	}
	registry[e.Name()] = e
}

// register is the init-time shorthand for function-backed experiments.
func register(name string, run func(ctx context.Context, opts Options) (Result, error)) {
	Register(funcExp{name: name, run: run})
}

// Names returns every registered experiment name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Experiments returns every registered experiment in name order.
func Experiments() []Experiment {
	names := Names()
	out := make([]Experiment, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// Lookup finds one experiment by exact name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// groups maps a group name to the registry prefix it expands to.
var groups = map[string]string{
	"ablations":  "ablation/",
	"extensions": "ext/",
}

// Resolve expands a list of names — exact experiment names, group names
// ("ablations", "extensions"), or "all" — into experiments in name order,
// deduplicated. Unknown names are an error listing the valid ones.
func Resolve(names []string) ([]Experiment, error) {
	picked := map[string]bool{}
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		switch {
		case name == "":
		case name == "all":
			for _, n := range Names() {
				picked[n] = true
			}
		case groups[name] != "":
			prefix := groups[name]
			for _, n := range Names() {
				if strings.HasPrefix(n, prefix) {
					picked[n] = true
				}
			}
		default:
			if _, ok := registry[name]; !ok {
				return nil, fmt.Errorf("exp: unknown experiment %q (valid: all, ablations, extensions, %s)",
					name, strings.Join(Names(), ", "))
			}
			picked[name] = true
		}
	}
	ordered := make([]string, 0, len(picked))
	for name := range picked {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	out := make([]Experiment, len(ordered))
	for i, name := range ordered {
		out[i] = registry[name]
	}
	return out, nil
}

// tableExp registers an experiment backed by one of the (memMB, pages, seed,
// workers) sweep functions.
func tableExp(name string, run func(memMB int, pages int32, seed int64, workers int) (*Table, error)) {
	register(name, func(_ context.Context, o Options) (Result, error) {
		memMB, pages := o.sizing()
		return run(memMB, pages, o.seed(), o.Parallelism)
	})
}

// tableExpNoPages registers a sweep that sizes itself from memory alone.
func tableExpNoPages(name string, run func(memMB int, seed int64, workers int) (*Table, error)) {
	register(name, func(_ context.Context, o Options) (Result, error) {
		memMB, _ := o.sizing()
		return run(memMB, o.seed(), o.Parallelism)
	})
}

func init() {
	register("fig1a", func(_ context.Context, _ Options) (Result, error) {
		return Fig1a(), nil
	})
	register("fig1b", func(_ context.Context, _ Options) (Result, error) {
		return Fig1b(), nil
	})
	register("fig3", func(_ context.Context, o Options) (Result, error) {
		opts := DefaultFig3Options(o.Scale)
		opts.Parallelism = o.Parallelism
		if o.Seed != 0 {
			opts.Seed = o.Seed
		}
		return Fig3(opts)
	})
	register("table1", func(_ context.Context, o Options) (Result, error) {
		opts := DefaultTable1Options(o.Scale)
		opts.Parallelism = o.Parallelism
		if o.Seed != 0 {
			opts.Seed = o.Seed
		}
		return Table1(opts)
	})
	register("faults", func(_ context.Context, o Options) (Result, error) {
		opts := DefaultFaultsOptions(o.Scale)
		opts.Parallelism = o.Parallelism
		if o.Seed != 0 {
			opts.Seed = o.Seed
		}
		if o.FaultRate >= 0 {
			// Keep the rate-0 baseline: overhead is relative to it.
			opts.Rates = []float64{0}
			if o.FaultRate > 0 {
				opts.Rates = append(opts.Rates, o.FaultRate)
			}
		}
		return FaultSweep(opts)
	})

	tableExp("ablation/partial-io", AblationPartialIO)
	tableExp("ablation/spanning", AblationSpanning)
	tableExp("ablation/bias", AblationBias)
	tableExpNoPages("ablation/threshold", AblationThreshold)
	tableExp("ablation/codec", AblationCodec)
	tableExpNoPages("ablation/fixed-size", AblationFixedSize)

	tableExp("ext/backing-store", BackingStoreSweep)
	tableExp("ext/compression-speed", CompressionSpeedSweep)
	register("ext/pinning", func(_ context.Context, o Options) (Result, error) {
		memMB, pages := o.sizing()
		return AdvisoryPinning(memMB, pages/3*2, o.seed(), o.Parallelism)
	})
	tableExpNoPages("ext/file-cache", CompressedFileCache)
	tableExp("ext/lfs", LFSComparison)
	tableExpNoPages("ext/multiprogramming", Multiprogramming)
	tableExpNoPages("ext/model-validation", ModelValidation)
	tableExpNoPages("ext/mobile", MobileScenario)
	register("ext/codec-sweep", func(_ context.Context, o Options) (Result, error) {
		memMB, pages := o.sizing()
		return CodecSweep(memMB, pages, o.seed(), o.Parallelism, o.HostTiming)
	})
	register("ext/fleet-sweep", func(_ context.Context, o Options) (Result, error) {
		memMB, pages := o.sizing()
		return FleetSweep(memMB, pages, o.seed(), o.Parallelism, o.TracePath)
	})
	register("ext/crash-sweep", func(ctx context.Context, o Options) (Result, error) {
		memMB, _ := o.sizing()
		return CrashSweep(ctx, memMB, o.seed(), o.Parallelism)
	})
}
