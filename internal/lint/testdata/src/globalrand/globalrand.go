// Package gr is a golden fixture for the globalrand analyzer.
package gr

import "math/rand"

const fixedSeed = 42

type opts struct{ Seed int64 }

// bad uses the process-global source and a computed seed.
func bad() {
	_ = rand.Intn(10)                    // want `rand\.Intn uses the process-global source`
	rand.Shuffle(4, func(i, j int) {})   // want `rand\.Shuffle uses the process-global source`
	rand.Seed(99)                        // want `rand\.Seed uses the process-global source`
	_ = rand.Float64()                   // want `rand\.Float64 uses the process-global source`
	_ = rand.New(rand.NewSource(nano())) // want `seed must be a constant, parameter or field`
}

func nano() int64 { return 0 }

// good threads explicit seeds, the pattern internal/trace and
// internal/workload already use.
func good(o opts, seed int64) {
	r := rand.New(rand.NewSource(fixedSeed))
	_ = r.Intn(10) // methods on a seeded *rand.Rand are fine
	_ = rand.New(rand.NewSource(seed + 1))
	_ = rand.New(rand.NewSource(o.Seed))
	_ = rand.New(rand.NewSource(int64(seed)))
	_ = rand.NewZipf(r, 1.2, 1, 100)
}
