package lint

// kernelproto: code reachable from a kernel-attached actor body must stay
// on the sim.Kernel baton. The discrete-event kernel's fleet contract —
// byte-identical at any GOMAXPROCS — rests on a single-actor discipline:
// exactly one actor body runs at a time, handed the baton by the kernel's
// own channel choreography. An actor body that spawns a raw goroutine,
// touches a channel directly, or takes a mutex/atomic reintroduces the
// host scheduler as a hidden input, and the fleet's determinism is gone
// in exactly the way -race cannot reliably catch.
//
// The analyzer first computes the set of "armers" — functions whose
// func-typed parameter runs as an actor body. The seeds are the kernel's
// own spawn primitives (Kernel.Go, Kernel.Bind, Kernel.Schedule in an
// internal/sim package); the fixed point then absorbs wrappers like
// cluster.Go(i, fn), which forwards its fn into Kernel.Go inside a
// closure — a plain func-value call the call graph itself drops, so the
// wrapper propagation is what makes the check hold on real fleet code.
//
// From every armed function literal and named function, a forward BFS
// over the call graph (deterministic, chain-recording, exactly the
// HotChains shape) visits everything an actor body can execute, and every
// violation — go statement, channel send/receive/select/close, ranging
// over a channel, sync.Mutex/RWMutex/WaitGroup/Cond/Once methods,
// sync/atomic operations — is reported with the actor→violation chain.
//
// Exemptions: packages matching internal/sim are never scanned or
// traversed into (the kernel IS the baton implementation), and sync.Pool
// is allowed (the pooled-scratch idiom is deterministic: Get/Put never
// block and the codecs' recyclers rely on it).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// KernelProto reports scheduler-visible primitives reachable from kernel
// actor bodies.
type KernelProto struct{}

// Name implements Analyzer.
func (KernelProto) Name() string { return "kernelproto" }

// Doc implements Analyzer.
func (KernelProto) Doc() string {
	return "kernel actor bodies must not spawn goroutines, touch channels, or take locks outside the sim.Kernel baton"
}

// Severity implements Analyzer.
func (KernelProto) Severity() Severity { return SevError }

// kernelArmerSeeds maps the sim.Kernel spawn primitives to the argument
// index of the func that becomes an actor body.
var kernelArmerSeeds = map[string]int{"Go": 1, "Bind": 1, "Schedule": 2}

// kpViolation is one violation with its actor→violation chain, resolved
// module-wide and then reported in the owning package.
type kpViolation struct {
	pkg   *Package
	node  ast.Node
	what  string
	chain []*types.Func
	root  string // name of the function whose body arms the actor
}

// kprotoFacts is the memoized module-wide result.
type kprotoFacts struct {
	viols []kpViolation
}

// kernelProto returns the module's kernel-protocol facts, computing them
// on first use.
func (m *Module) kernelProto() *kprotoFacts {
	if m.kproto == nil {
		m.kproto = computeKernelProto(m)
	}
	return m.kproto
}

// Check implements Analyzer.
func (kp KernelProto) Check(pkg *Package) []Diagnostic {
	if pkg.Mod == nil || pkg.Mod.Graph == nil {
		return nil
	}
	var out []Diagnostic
	for _, v := range pkg.Mod.kernelProto().viols {
		if v.pkg != pkg {
			continue
		}
		out = append(out, diag(pkg, kp.Name(), v.node,
			"actor body armed in %s: %s outside the kernel baton (%s); fleet determinism needs the single-actor discipline",
			v.root, v.what, chainString(v.chain)))
	}
	return out
}

// computeKernelProto runs the armer fixed point, collects the actor
// roots, and scans everything reachable from them.
func computeKernelProto(mod *Module) *kprotoFacts {
	g := mod.Graph
	armed := computeArmers(mod)

	// Roots: at every call site of an armer, the armed argument is either
	// a function literal (scanned in place, its outgoing edges followed)
	// or a named module function (a BFS root). Func-typed parameters were
	// already absorbed by the armer fixed point.
	type litRoot struct {
		node *Node
		lit  *ast.FuncLit
	}
	var litRoots []litRoot
	chains := make(map[*types.Func][]*types.Func)
	rootOf := make(map[*types.Func]string)
	var frontier []*types.Func
	addRoot := func(fn *types.Func, chain []*types.Func, root string) {
		if _, ok := chains[fn]; ok || g.Node(fn) == nil || inSimPkg(fn) {
			return
		}
		chains[fn] = chain
		rootOf[fn] = root
		frontier = append(frontier, fn)
	}
	for _, n := range g.order {
		if simPath(n.Pkg.Path) {
			continue // the kernel arms its own machinery
		}
		for _, e := range n.Out {
			idx, ok := armerIndex(e.Callee, armed)
			if !ok {
				continue
			}
			call, okCall := e.Site.(*ast.CallExpr)
			if !okCall || idx >= len(call.Args) {
				continue
			}
			switch arg := ast.Unparen(call.Args[idx]).(type) {
			case *ast.FuncLit:
				litRoots = append(litRoots, litRoot{node: n, lit: arg})
			default:
				if fn := funcValueOf(mod, call.Args[idx]); fn != nil {
					addRoot(fn, []*types.Func{fn}, n.Fn.Name())
				}
			}
		}
	}
	// Literal roots: scan the literal body directly and seed the BFS with
	// the calls made inside the literal's span.
	facts := &kprotoFacts{}
	for _, lr := range litRoots {
		root := lr.node.Fn.Name()
		for _, v := range scanKernelViolations(mod, lr.lit.Body) {
			facts.viols = append(facts.viols, kpViolation{
				pkg: lr.node.Pkg, node: v.node, what: v.what,
				chain: []*types.Func{lr.node.Fn}, root: root,
			})
		}
		for _, e := range lr.node.Out {
			if e.Site.Pos() < lr.lit.Pos() || e.Site.End() > lr.lit.End() {
				continue
			}
			addRoot(e.Callee, []*types.Func{lr.node.Fn, e.Callee}, root)
		}
	}

	// Forward BFS, level-synchronized with declaration-order tie-breaks,
	// exactly the HotChains shape.
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return g.before(frontier[i], frontier[j]) })
		var next []*types.Func
		for _, fn := range frontier {
			node := g.Node(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Out {
				if _, ok := chains[e.Callee]; ok || g.Node(e.Callee) == nil || inSimPkg(e.Callee) {
					continue
				}
				chain := make([]*types.Func, len(chains[fn])+1)
				copy(chain, chains[fn])
				chain[len(chain)-1] = e.Callee
				chains[e.Callee] = chain
				rootOf[e.Callee] = rootOf[fn]
				next = append(next, e.Callee)
			}
		}
		frontier = next
	}

	// Scan every reached function body, in declaration order.
	for _, n := range g.order {
		chain, ok := chains[n.Fn]
		if !ok {
			continue
		}
		for _, v := range scanKernelViolations(mod, n.Decl.Body) {
			facts.viols = append(facts.viols, kpViolation{
				pkg: n.Pkg, node: v.node, what: v.what,
				chain: chain, root: rootOf[n.Fn],
			})
		}
	}
	return facts
}

// computeArmers finds every (function, param index) whose func argument
// runs as an actor body: the sim.Kernel seeds plus the wrapper fixed
// point (a function that forwards its own func-typed parameter into an
// armed position — directly, or from inside a function literal passed at
// the armed position — is itself an armer).
func computeArmers(mod *Module) map[*types.Func]int {
	g := mod.Graph
	armed := make(map[*types.Func]int)
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			if _, ok := armed[n.Fn]; ok {
				continue
			}
			params := funcParamsOf(n.Fn)
			if len(params) == 0 {
				continue
			}
			for _, e := range n.Out {
				idx, ok := armerIndex(e.Callee, armed)
				if !ok {
					continue
				}
				call, okCall := e.Site.(*ast.CallExpr)
				if !okCall || idx >= len(call.Args) {
					continue
				}
				arg := ast.Unparen(call.Args[idx])
				var pi int = -1
				switch a := arg.(type) {
				case *ast.Ident:
					if obj := mod.Info.Uses[a]; obj != nil {
						if i, ok := params[obj]; ok {
							pi = i
						}
					}
				case *ast.FuncLit:
					pi = litCallsParam(mod, a, params)
				}
				if pi >= 0 {
					armed[n.Fn] = pi
					changed = true
					break
				}
			}
		}
	}
	return armed
}

// armerIndex resolves the armed argument index of a callee: the kernel
// seeds, or a fixed-point wrapper.
func armerIndex(fn *types.Func, armed map[*types.Func]int) (int, bool) {
	if fn == nil {
		return 0, false
	}
	if pathHasSuffix(pkgPath(fn), "internal/sim") {
		if idx, ok := kernelArmerSeeds[fn.Name()]; ok {
			return idx, true
		}
		return 0, false
	}
	idx, ok := armed[fn]
	return idx, ok
}

// funcParamsOf maps a function's func-typed parameters to their indices.
func funcParamsOf(fn *types.Func) map[types.Object]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out map[types.Object]int
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, isFunc := p.Type().Underlying().(*types.Signature); isFunc {
			if out == nil {
				out = make(map[types.Object]int)
			}
			out[p] = i
		}
	}
	return out
}

// litCallsParam reports which func-typed parameter (if any) a literal's
// body invokes — the cluster.Go shape, where the armed closure calls the
// wrapper's fn argument.
func litCallsParam(mod *Module, lit *ast.FuncLit, params map[types.Object]int) int {
	found := -1
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found >= 0 {
			return found < 0
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := mod.Info.Uses[id]; obj != nil {
				if i, ok := params[obj]; ok {
					found = i
				}
			}
		}
		return true
	})
	return found
}

// funcValueOf resolves a func-valued argument to a declared module
// function (named function or method value), or nil.
func funcValueOf(mod *Module, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := mod.Info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := mod.Info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func simPath(path string) bool { return pathHasSuffix(path, "internal/sim") }

func inSimPkg(fn *types.Func) bool { return simPath(pkgPath(fn)) }

// kpSite is one violation inside a body.
type kpSite struct {
	node ast.Node
	what string
}

// forbiddenSyncTypes are the sync primitives an actor body must not take;
// sync.Pool is deliberately absent (pooled scratch never blocks).
var forbiddenSyncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true, "Once": true,
}

// scanKernelViolations scans one body (or literal body) for
// scheduler-visible primitives.
func scanKernelViolations(mod *Module, body ast.Node) []kpSite {
	info := mod.Info
	var out []kpSite
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			out = append(out, kpSite{n, "spawns a raw goroutine"})
		case *ast.SendStmt:
			out = append(out, kpSite{n, "sends on a channel"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, kpSite{n, "receives from a channel"})
			}
		case *ast.SelectStmt:
			out = append(out, kpSite{n, "selects on channels"})
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out = append(out, kpSite{n, "ranges over a channel"})
				}
			}
		case *ast.CallExpr:
			if s := kernelViolationCall(info, n); s != "" {
				out = append(out, kpSite{n, s})
			}
		}
		return true
	})
	return out
}

// kernelViolationCall classifies a call: close(ch), sync primitive
// methods, and sync/atomic operations.
func kernelViolationCall(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
			return "closes a channel"
		}
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if named, ok := deref(s.Recv()).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sync":
					if forbiddenSyncTypes[obj.Name()] {
						return fmt.Sprintf("takes sync.%s.%s", obj.Name(), sel.Sel.Name)
					}
				case "sync/atomic":
					return fmt.Sprintf("performs atomic %s.%s", obj.Name(), sel.Sel.Name)
				}
			}
		}
		return ""
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && pkgPath(fn) == "sync/atomic" {
		return "performs atomic " + fn.Name()
	}
	return ""
}
