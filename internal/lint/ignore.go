package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//cclint:ignore analyzer[,analyzer...] -- reason
//
// A trailing directive suppresses matching findings on its own line; a
// standalone directive (nothing but whitespace before it on the line)
// suppresses matching findings on the line below. The reason is mandatory.
const ignorePrefix = "cclint:ignore"

// hygieneName is the pseudo-analyzer that reports directive problems.
// Directives cannot name it, so hygiene findings cannot be suppressed.
const hygieneName = "cclint"

// directive is one parsed //cclint:ignore comment.
type directive struct {
	pos       token.Position
	target    int      // line whose findings it suppresses
	analyzers []string // nil when malformed
	badNames  []string // named analyzers that do not exist
	noReason  bool
	used      bool
}

// directives indexes a package's ignore directives by file and target line.
type directives struct {
	pkg  *Package
	byFL map[string]map[int][]*directive
	all  []*directive
}

// collectIgnores parses every //cclint:ignore directive in the package.
func collectIgnores(pkg *Package, known map[string]bool) *directives {
	ds := &directives{pkg: pkg, byFL: make(map[string]map[int][]*directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := parseDirective(text[len(ignorePrefix):], pos, known)
				d.target = pos.Line
				if pkg.standaloneComment(pos) {
					d.target = pos.Line + 1
				}
				lines := ds.byFL[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					ds.byFL[pos.Filename] = lines
				}
				lines[d.target] = append(lines[d.target], d)
				ds.all = append(ds.all, d)
			}
		}
	}
	return ds
}

// parseDirective parses the part after "cclint:ignore".
func parseDirective(rest string, pos token.Position, known map[string]bool) *directive {
	d := &directive{pos: pos}
	names, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		d.noReason = true
	}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !known[n] || n == hygieneName {
			d.badNames = append(d.badNames, n)
			continue
		}
		d.analyzers = append(d.analyzers, n)
	}
	return d
}

// standaloneComment reports whether the line holding pos contains nothing
// but whitespace before the comment, i.e. the directive is on its own line
// and therefore applies to the line below.
func (pkg *Package) standaloneComment(pos token.Position) bool {
	lines := pkg.Lines[pos.Filename]
	if pos.Line-1 >= len(lines) || pos.Line < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// suppress reports whether a well-formed directive covers the diagnostic,
// marking the directive used.
func (ds *directives) suppress(d Diagnostic) bool {
	hit := false
	for _, dir := range ds.byFL[d.File][d.Line] {
		if dir.noReason || len(dir.badNames) > 0 {
			continue // malformed directives never suppress
		}
		for _, name := range dir.analyzers {
			if name == d.Analyzer {
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}

// hygiene reports directive problems: missing reason, unknown analyzer,
// and — when the full suite ran — directives that no longer suppress
// anything (stale ignores must be deleted, exactly as staticcheck treats
// them). The unused check is skipped for filtered -only runs, where a
// directive for an unselected analyzer is legitimately idle.
func (ds *directives) hygiene(reportUnused bool) []Diagnostic {
	var out []Diagnostic
	emit := func(dir *directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: hygieneName,
			Pos:      dir.pos,
			File:     dir.pos.Filename,
			Line:     dir.pos.Line,
			Col:      dir.pos.Column,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, dir := range ds.all {
		switch {
		case dir.noReason:
			emit(dir, "ignore directive missing '-- reason': every suppression must say why")
		case len(dir.badNames) > 0:
			emit(dir, "ignore directive names unknown analyzer %q", strings.Join(dir.badNames, ","))
		case !dir.used && reportUnused:
			emit(dir, "ignore directive for %q suppresses nothing; delete it", strings.Join(dir.analyzers, ","))
		}
	}
	return out
}
