package machine

import (
	"fmt"
	"time"

	"compcache/internal/compress"
	"compcache/internal/core"
	"compcache/internal/disk"
	"compcache/internal/fs"
	"compcache/internal/mem"
	"compcache/internal/netdev"
	"compcache/internal/policy"
	"compcache/internal/sim"
	"compcache/internal/stats"
	"compcache/internal/swap"
	"compcache/internal/vm"
)

// Machine is a simulated computer. All subsystems share one virtual clock;
// running a workload against the machine produces deterministic virtual-time
// measurements.
type Machine struct {
	cfg Config

	Clock *sim.Clock
	Pool  *mem.Pool
	// Device is the backing hardware (a *disk.Disk unless the configuration
	// selects a network page server).
	Device fs.Device
	Disk   *disk.Disk // non-nil only for disk-backed machines
	FS     *fs.FS
	VM     *vm.VM
	CC     *core.Cache // nil when the compression cache is disabled

	direct    rawStore        // baseline backing store (direct or LFS)
	clustered *swap.Clustered // compressed backing store
	alloc     *policy.Allocator
	codec     compress.Codec

	segByID     map[int32]*vm.Segment
	segCodec    map[int32]compress.Codec // per-segment override (§3)
	comp        stats.Compression
	start       sim.Time
	startFrozen bool
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		Clock:    &sim.Clock{},
		segByID:  make(map[int32]*vm.Segment),
		segCodec: make(map[int32]compress.Codec),
	}

	frames := int(cfg.MemoryBytes / int64(cfg.PageSize))
	m.Pool = mem.NewPool(frames, cfg.PageSize)

	var err error
	if cfg.Net != nil {
		m.Device, err = netdev.New(*cfg.Net, m.Clock)
	} else {
		m.Disk, err = disk.New(cfg.Disk, m.Clock)
		m.Device = m.Disk
	}
	if err != nil {
		return nil, err
	}
	m.FS, err = fs.New(cfg.FS, m.Device, m.Clock, m.Pool)
	if err != nil {
		return nil, err
	}
	m.VM = vm.New(m.Clock, m.Pool, cfg.Cost)
	m.VM.SetPager(m)

	m.alloc = policy.NewAllocator(m.Pool, m.Clock)
	m.alloc.Reserve = cfg.ReserveFrames
	bias := func(name string) policy.Bias {
		if b, ok := cfg.Biases[name]; ok {
			return b
		}
		return policy.Neutral
	}
	m.alloc.Register(m.FS, bias("fs"))
	m.alloc.Register(m.VM, bias("vm"))

	if cfg.CC.Enabled {
		m.codec, err = compress.Lookup(cfg.CC.Codec)
		if err != nil {
			return nil, err
		}
		m.CC = core.New(cfg.CC.Core, m.Clock, m.Pool)
		m.CC.SetHooks(m.flushEntries, m.entryDropped)
		m.alloc.Register(ccConsumer{m.CC}, bias("cc"))
		m.clustered, err = swap.NewClustered(cfg.Swap, m.FS)
		if err != nil {
			return nil, err
		}
		if cfg.CC.FixedFrames > 0 {
			m.CC.Prefill(cfg.CC.FixedFrames)
		}
		if cfg.CC.FileCache {
			m.FS.SetCompressedBlockCache(fsBlockCache{m})
		}
		if cfg.CC.MetadataOverhead {
			m.reserveKernelBytes(staticOverheadBytes)
		}
	} else if cfg.LFSSwap != nil {
		lfsCfg := *cfg.LFSSwap
		if lfsCfg.PageSize == 0 {
			lfsCfg.PageSize = cfg.PageSize
		}
		m.direct, err = swap.NewLFS(lfsCfg, m.FS, m.Pool)
		if err != nil {
			return nil, err
		}
	} else {
		m.direct, err = swap.NewDirect(m.FS, cfg.PageSize)
		if err != nil {
			return nil, err
		}
	}

	m.VM.SetFrameSource(m.allocFrame)
	m.FS.SetFrameSource(m.allocFrame)
	return m, nil
}

// rawStore is the baseline machine's backing store: whole uncompressed
// pages in, whole pages out. *swap.Direct implements it (the unmodified
// Sprite arrangement); *swap.LFS implements it for the §5.1 log-structured
// alternative.
type rawStore interface {
	Write(key swap.PageKey, data []byte)
	Read(key swap.PageKey, buf []byte) bool
	Has(key swap.PageKey) bool
	Invalidate(key swap.PageKey)
	Stats() stats.Swap
}

// ccConsumer adapts the compression cache to the policy interface with its
// registry name.
type ccConsumer struct{ *core.Cache }

func (ccConsumer) Name() string { return "cc" }

// Config returns the machine's (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Elapsed reports the virtual time since the machine was created or since
// the last ResetClockBase call.
func (m *Machine) Elapsed() time.Duration { return time.Duration(m.Clock.Now() - m.start) }

// MarkStart makes subsequent Elapsed() calls measure from now; workloads use
// it to exclude their setup phase if desired. Under FreezeStart it is a
// no-op.
func (m *Machine) MarkStart() {
	if m.startFrozen {
		return
	}
	m.start = m.Clock.Now()
}

// FreezeStart pins the Elapsed() origin at the current instant and makes
// later MarkStart calls no-ops. The multiprogramming runner uses it so that
// member workloads' own MarkStart calls cannot reset the shared clock
// origin.
func (m *Machine) FreezeStart() {
	m.start = m.Clock.Now()
	m.startFrozen = true
}

// Drain waits for all queued asynchronous backing-store writes to finish,
// so that end-of-run timings include background cleaning.
func (m *Machine) Drain() { m.Device.Drain() }

// EvictAll pushes every resident page out of memory, empties the compression
// cache to the backing store, and drops the file cache. It models a freshly
// (re)started process whose address space lives entirely on the backing
// store — the setup for the gold "cold" benchmark.
func (m *Machine) EvictAll() {
	for m.VM.ReleaseOldest() {
	}
	if m.CC != nil {
		for m.CC.ReleaseOldest() {
		}
	}
	m.FS.DropCaches()
	m.Drain()
}

// NewSegmentCodec creates a segment whose pages are compressed with a
// specific codec instead of the machine default — §3's requirement that the
// design "allow different compression algorithms to be used for different
// types of data, in order to get the best compression rates and/or
// throughput".
func (m *Machine) NewSegmentCodec(name string, bytes int64, codec string) (*Space, error) {
	c, err := compress.Lookup(codec)
	if err != nil {
		return nil, err
	}
	sp := m.NewSegment(name, bytes)
	m.segCodec[sp.seg.ID] = c
	return sp, nil
}

// codecFor returns the codec for a segment's pages.
func (m *Machine) codecFor(seg int32) compress.Codec {
	if c, ok := m.segCodec[seg]; ok {
		return c
	}
	return m.codec
}

// NewSegment creates a virtual-memory segment of at least `bytes` bytes and
// returns an address space handle for it.
func (m *Machine) NewSegment(name string, bytes int64) *Space {
	if bytes <= 0 {
		panic("machine: segment size must be positive")
	}
	npages := int32((bytes + int64(m.cfg.PageSize) - 1) / int64(m.cfg.PageSize))
	seg := m.VM.NewSegment(name, npages)
	m.segByID[seg.ID] = seg
	if m.cfg.CC.Enabled && m.cfg.CC.MetadataOverhead {
		m.reserveKernelBytes(int(npages) * perPageOverheadBytes)
	}
	return &Space{m: m, seg: seg}
}

// reserveKernelBytes pins whole frames to model kernel metadata overhead.
func (m *Machine) reserveKernelBytes(bytes int) {
	frames := (bytes + m.cfg.PageSize - 1) / m.cfg.PageSize
	for i := 0; i < frames; i++ {
		if _, ok := m.Pool.Alloc(mem.Kernel); !ok {
			panic("machine: not enough memory for kernel metadata")
		}
	}
}

// allocFrame is the policy-arbitrated frame source shared by the VM fault
// path and the file cache.
func (m *Machine) allocFrame(owner mem.Owner) mem.FrameID {
	id := m.alloc.AllocFrame(owner)
	m.maybeClean()
	return id
}

// maybeClean runs the background cleaner: if the stock of immediately
// usable frames (free plus clean-reclaimable) is below the reserve, write
// out the oldest dirty compressed data in clustered batches. The write is
// asynchronous; its cost appears as device busy time that later synchronous
// reads queue behind, exactly how the paper's cleaner thread overlaps with
// computation.
func (m *Machine) maybeClean() {
	if m.CC == nil {
		return
	}
	guard := 8 // bound cleaning work per trigger
	for m.Pool.FreeCount()+m.CC.ReclaimableFrames() < m.cfg.CC.CleanReserve && guard > 0 {
		if m.CC.Clean() == 0 {
			return
		}
		guard--
	}
}

// Stats assembles the full statistics block.
func (m *Machine) Stats() stats.Run {
	r := stats.Run{
		VM:   m.VM.Stats(),
		Comp: m.comp,
		Disk: m.Device.Stats(),
		Time: m.Elapsed(),
	}
	if m.CC != nil {
		r.CC = m.CC.Stats()
	}
	if m.clustered != nil {
		r.Swap = m.clustered.Stats()
	} else if m.direct != nil {
		r.Swap = m.direct.Stats()
	}
	return r
}

// ---------------------------------------------------------------------------
// vm.Pager implementation: the paging policy of §4.1.

// PageOut handles a page leaving uncompressed memory.
func (m *Machine) PageOut(p *vm.Page, data []byte) {
	if m.CC == nil {
		// Baseline system: dirty pages go to the direct swap file; clean
		// pages with a valid backing copy are simply discarded.
		if p.Dirty {
			m.direct.Write(p.Key, data)
			p.Dirty = false
			p.SwapValid = true
		}
		p.State = vm.Swapped
		return
	}

	// Fast path: the page was faulted out of the cache and never modified,
	// so its compressed copy is still valid — re-entering the cache is just
	// a page-table update, no compression (§4.1's retained compressed
	// copies; this is what keeps read-mostly working sets cheap).
	if !p.Dirty && m.CC.Has(p.Key) {
		p.State = vm.Compressed
		return
	}

	// Compression cache path: compress the page and decide its fate.
	m.Clock.Advance(m.cfg.Cost.CompressCost(len(data)))
	m.comp.Compressions++
	m.comp.BytesIn += uint64(len(data))
	cdata := m.codecFor(p.Key.Seg).Compress(nil, data)
	m.comp.BytesOut += uint64(len(cdata))

	if len(cdata) <= m.cfg.keepThreshold() {
		m.comp.CompressibleIn += uint64(len(data))
		m.comp.CompressibleOut += uint64(len(cdata))
		if m.CC.Insert(p.Key, cdata, p.Dirty) {
			p.State = vm.Compressed
			p.Dirty = false // dirtiness now tracked by the cache entry
			m.maybeClean()
			return
		}
		// The cache could not grow; send the compressed page to the backing
		// store directly, still benefiting from the reduced transfer size.
		if p.Dirty || !p.SwapValid {
			m.clustered.WriteCluster([]swap.Item{{Key: p.Key, Data: cdata, Compressed: true}}, true)
			p.SwapValid = true
		}
		p.Dirty = false
		p.State = vm.Swapped
		return
	}

	// Below the 4:3 threshold: the compression effort was wasted (§5.2) and
	// the page travels uncompressed.
	m.comp.Incompressible++
	if p.Dirty || !p.SwapValid {
		raw := append([]byte(nil), data...)
		m.clustered.WriteCluster([]swap.Item{{Key: p.Key, Data: raw, Compressed: false}}, true)
		p.SwapValid = true
	}
	p.Dirty = false
	p.State = vm.Swapped
}

// PageIn services a fault for a page whose contents are compressed in
// memory or on the backing store.
func (m *Machine) PageIn(p *vm.Page, data []byte) vm.Source {
	if m.CC != nil {
		if cdata, entryDirty, ok := m.CC.Fault(p.Key); ok {
			m.decompressInto(data, cdata, p.Key)
			// The entry is retained and backs the resident copy, so the
			// page itself is clean; SwapValid tracks whether the entry has
			// been persisted. Modifying the page invalidates the entry (see
			// Dirtied).
			p.Dirty = false
			p.SwapValid = !entryDirty
			return vm.SrcCC
		}
	}
	if m.CC == nil {
		if !m.direct.Read(p.Key, data) {
			panic(fmt.Sprintf("machine: page %v in state %v has no backing copy", p.Key, p.State))
		}
		m.Clock.Advance(m.cfg.Cost.PageCopy)
		p.Dirty = false
		p.SwapValid = true
		return vm.SrcSwap
	}

	payload, compressed, neighbors, ok := m.clustered.Read(p.Key)
	if !ok {
		panic(fmt.Sprintf("machine: page %v in state %v has no backing copy", p.Key, p.State))
	}
	if compressed {
		m.decompressInto(data, payload, p.Key)
	} else {
		m.Clock.Advance(m.cfg.Cost.PageCopy)
		copy(data, payload)
	}
	p.Dirty = false
	p.SwapValid = true

	if !m.cfg.CC.DisablePrefetch {
		m.insertNeighbors(neighbors)
	}
	return vm.SrcSwap
}

// insertNeighbors caches pages that came along for free with a clustered
// read ("multiple pages can be obtained with a single read from the backing
// store", §5.1). Only compressed, currently swapped-out pages are inserted,
// and only when the cache can take them without stealing memory.
func (m *Machine) insertNeighbors(neighbors []swap.Neighbor) {
	for _, n := range neighbors {
		if !n.Compressed {
			continue
		}
		seg := m.segByID[n.Key.Seg]
		if seg == nil {
			continue
		}
		p := seg.Page(n.Key.Page)
		if p.State != vm.Swapped || m.CC.Has(n.Key) {
			continue
		}
		cdata := append([]byte(nil), n.Data...)
		m.Clock.Advance(m.cfg.Cost.PageCopy / 4) // short memcpy of compressed bytes
		if !m.CC.Insert(n.Key, cdata, false) {
			// No free frame: this is how the paper's swap reads behave —
			// they land in the compression cache, displacing the oldest
			// memory by the usual age comparison. Make room and retry once.
			if !m.alloc.FreeOne() || !m.CC.Insert(n.Key, cdata, false) {
				continue
			}
		}
		p.State = vm.Compressed
	}
}

// Dirtied invalidates stale lower-level copies when a clean resident page is
// first modified: the retained compression-cache entry and the backing-store
// copy both go stale at that moment.
func (m *Machine) Dirtied(p *vm.Page) {
	if m.CC != nil {
		m.CC.Drop(p.Key)
	}
	if m.clustered != nil {
		m.clustered.Invalidate(p.Key)
	}
	if m.direct != nil {
		m.direct.Invalidate(p.Key)
	}
}

// flushEntries is the cleaner's flush hook: persist dirty cache entries with
// one clustered asynchronous write.
func (m *Machine) flushEntries(items []swap.Item) {
	m.clustered.WriteCluster(items, true)
}

// ---------------------------------------------------------------------------
// fs.CompressedBlockCache implementation: §6's compressed file cache.
// File blocks share the compression cache with VM pages under synthetic
// negative segment IDs, so one pool of compressed memory serves both, with
// the usual aging and reclamation.

// fsBlockCache adapts the compression cache to the file system.
type fsBlockCache struct{ m *Machine }

// fsBlockKey maps a (file, block) pair into the page-key namespace; file
// cache entries use negative segment IDs, which no VM segment ever has.
func fsBlockKey(fileID int32, block int64) swap.PageKey {
	return swap.PageKey{Seg: -1 - fileID, Page: int32(block)}
}

// Store implements fs.CompressedBlockCache.
func (f fsBlockCache) Store(fileID int32, block int64, data []byte) bool {
	m := f.m
	key := fsBlockKey(fileID, block)
	if m.CC.Has(key) {
		return true // still-valid compressed copy from an earlier eviction
	}
	m.Clock.Advance(m.cfg.Cost.CompressCost(len(data)))
	m.comp.Compressions++
	m.comp.BytesIn += uint64(len(data))
	cdata := m.codec.Compress(nil, data)
	m.comp.BytesOut += uint64(len(cdata))
	if len(cdata) > m.cfg.keepThreshold() {
		m.comp.Incompressible++
		return false
	}
	m.comp.CompressibleIn += uint64(len(data))
	m.comp.CompressibleOut += uint64(len(cdata))
	// File blocks are always clean here (written back before Store), so the
	// entry can be dropped at any time without I/O.
	return m.CC.Insert(key, cdata, false)
}

// Load implements fs.CompressedBlockCache.
func (f fsBlockCache) Load(fileID int32, block int64, data []byte) bool {
	m := f.m
	cdata, _, ok := m.CC.Fault(fsBlockKey(fileID, block))
	if !ok {
		return false
	}
	m.decompressInto(data, cdata, fsBlockKey(fileID, block))
	return true
}

// Invalidate implements fs.CompressedBlockCache.
func (f fsBlockCache) Invalidate(fileID int32, block int64) {
	f.m.CC.Drop(fsBlockKey(fileID, block))
}

// entryDropped is called when frame reclamation discards a live clean entry.
// If the page lived in the cache it now lives only on the backing store; if
// it is resident (the entry was a retained copy of an unmodified page), the
// backing store still holds the same contents.
func (m *Machine) entryDropped(key swap.PageKey) {
	seg := m.segByID[key.Seg]
	if seg == nil {
		return
	}
	p := seg.Page(key.Page)
	switch p.State {
	case vm.Compressed:
		p.State = vm.Swapped
		p.SwapValid = true
		p.Dirty = false
	case vm.Resident:
		// Reclaim only drops clean entries, so the backing store has the
		// contents.
		p.SwapValid = true
	}
}

// decompressInto decompresses cdata into the page buffer data, charging the
// cost model, and panics on corruption (which would be a simulator bug: the
// cache stores only blocks it produced).
func (m *Machine) decompressInto(data, cdata []byte, key swap.PageKey) {
	m.Clock.Advance(m.cfg.Cost.DecompressCost(len(data)))
	m.comp.Decompressions++
	out, err := m.codecFor(key.Seg).Decompress(data[:0], cdata)
	if err != nil {
		panic(fmt.Sprintf("machine: corrupt compressed page %v: %v", key, err))
	}
	if len(out) != len(data) {
		panic(fmt.Sprintf("machine: page %v decompressed to %d bytes, want %d", key, len(out), len(data)))
	}
	// Decompress appends to data[:0]; a codec that transiently grows past
	// cap(data) leaves the result in a new backing array, and without this
	// copy the page would silently keep its stale contents.
	if len(out) > 0 && &out[0] != &data[0] {
		copy(data, out)
	}
}

// CheckInvariants validates cross-subsystem invariants; tests call it after
// stressing a machine.
func (m *Machine) CheckInvariants() error {
	if err := m.Pool.CheckConservation(); err != nil {
		return err
	}
	if err := m.VM.CheckLRU(); err != nil {
		return err
	}
	if m.CC != nil {
		if err := m.CC.CheckConsistency(); err != nil {
			return err
		}
	}
	if m.clustered != nil {
		if err := m.clustered.CheckConsistency(); err != nil {
			return err
		}
	}
	// Every page's state must agree with the subsystem actually holding it.
	for _, seg := range m.VM.Segments() {
		for i := int32(0); i < seg.NPages; i++ {
			p := seg.Page(i)
			switch p.State {
			case vm.Compressed:
				if m.CC == nil || !m.CC.Has(p.Key) {
					return fmt.Errorf("machine: page %v marked compressed but absent from cache", p.Key)
				}
			case vm.Swapped:
				hasBacking := (m.direct != nil && m.direct.Has(p.Key)) ||
					(m.clustered != nil && m.clustered.Has(p.Key))
				if !hasBacking {
					return fmt.Errorf("machine: page %v marked swapped but absent from backing store", p.Key)
				}
			case vm.Resident:
				if p.Frame == mem.NoFrame {
					return fmt.Errorf("machine: resident page %v has no frame", p.Key)
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Space: the workload-facing address-space handle.

// Space is a byte-addressable view of one segment. Workloads allocate their
// data structures inside spaces so every access goes through the simulated
// VM system.
type Space struct {
	m   *Machine
	seg *vm.Segment
}

// Machine returns the owning machine.
func (s *Space) Machine() *Machine { return s.m }

// Size reports the segment size in bytes.
func (s *Space) Size() int64 { return s.seg.Size(s.m.cfg.PageSize) }

// Pages reports the segment size in pages.
func (s *Space) Pages() int32 { return s.seg.NPages }

// Touch references one word on page n (reading or writing), the primitive
// the thrasher workload uses.
func (s *Space) Touch(page int32, write bool) { s.m.VM.Touch(s.seg, page, write) }

// Pin faults page n in (if needed) and exempts it from eviction — the §3
// advisory for applications that know LRU will behave poorly.
func (s *Space) Pin(page int32) { s.m.VM.Pin(s.seg, page) }

// Unpin makes page n evictable again.
func (s *Space) Unpin(page int32) { s.m.VM.Unpin(s.seg, page) }

// Read copies from the space into buf.
func (s *Space) Read(off int64, buf []byte) { s.m.VM.Read(s.seg, off, buf) }

// Write copies data into the space.
func (s *Space) Write(off int64, data []byte) { s.m.VM.Write(s.seg, off, data) }

// ReadWord reads the 8-byte word at off.
func (s *Space) ReadWord(off int64) uint64 { return s.m.VM.ReadWord(s.seg, off) }

// WriteWord writes the 8-byte word at off.
func (s *Space) WriteWord(off int64, val uint64) { s.m.VM.WriteWord(s.seg, off, val) }
