// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench [-scale small|paper] [-exp fig1a|fig1b|fig3|table1|ablations|all] [-faults [-fault-rate R]] [-j N]
//
// Each experiment prints the same rows or series the paper reports; the
// paper's published values are included alongside where applicable (Table 1)
// so the shape comparison is immediate. At the paper scale the full suite
// takes a few minutes of host time; the virtual-time measurements themselves
// are deterministic.
//
// -j caps how many simulated machines run concurrently: 0 (the default)
// uses one worker per core, 1 forces serial execution. Every machine runs
// on its own virtual clock with its own cloned workload, so the output is
// byte-for-byte identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"compcache/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or paper")
	expFlag := flag.String("exp", "all", "experiment: fig1a, fig1b, fig3, table1, ablations, extensions, faults, all")
	format := flag.String("format", "text", "output format for tables: text or csv")
	jobs := flag.Int("j", 0, "max concurrent simulated machines (0 = one per core, 1 = serial); output is identical at any value")
	faultsFlag := flag.Bool("faults", false, "run the fault-injection sweep (overhead and survival vs fault rate); shorthand for -exp faults")
	faultRate := flag.Float64("fault-rate", -1, "restrict the fault sweep to a single rate (plus the fault-free baseline); default sweeps the built-in rates")
	flag.Parse()
	if *faultRate >= 0 && *expFlag == "all" && !*faultsFlag {
		*faultsFlag = true
	}
	if *faultsFlag && *expFlag == "all" {
		*expFlag = "faults"
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "ccbench: unknown format %q\n", *format)
		os.Exit(2)
	}
	emit := func(tab *exp.Table) {
		if *format == "csv" {
			fmt.Printf("# %s\n%s\n", tab.Title, tab.CSV())
			return
		}
		fmt.Println(tab)
	}

	var scale exp.Scale
	switch *scaleFlag {
	case "small":
		scale = exp.Small
	case "paper":
		scale = exp.Paper
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	which := strings.Split(*expFlag, ",")
	run := func(name string) bool {
		if *expFlag == "all" {
			return true
		}
		for _, w := range which {
			if strings.TrimSpace(w) == name {
				return true
			}
		}
		return false
	}

	ran := 0
	start := time.Now() //cclint:ignore walltime -- deliberate host-time reading: the closing line reports how long the suite took on this machine, never a simulated cost
	if run("fig1a") {
		fmt.Println(exp.Fig1a())
		ran++
	}
	if run("fig1b") {
		fmt.Println(exp.Fig1b())
		ran++
	}
	if run("fig3") {
		opts := exp.DefaultFig3Options(scale)
		opts.Parallelism = *jobs
		res, err := exp.Fig3(opts)
		fatal(err)
		emit(res.TableA())
		emit(res.TableB())
		ran++
	}
	if run("table1") {
		opts := exp.DefaultTable1Options(scale)
		opts.Parallelism = *jobs
		res, err := exp.Table1(opts)
		fatal(err)
		emit(res.Table())
		ran++
	}
	if run("extensions") {
		memMB, pages := 1, int32(768)
		if scale == exp.Paper {
			memMB, pages = 6, 4096
		}
		j := *jobs
		for _, f := range []func() (*exp.Table, error){
			func() (*exp.Table, error) { return exp.BackingStoreSweep(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.CompressionSpeedSweep(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.AdvisoryPinning(memMB, pages/3*2, 1, j) },
			func() (*exp.Table, error) { return exp.CompressedFileCache(memMB, 1, j) },
			func() (*exp.Table, error) { return exp.LFSComparison(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.Multiprogramming(memMB, 1, j) },
			func() (*exp.Table, error) { return exp.ModelValidation(memMB, 1, j) },
			func() (*exp.Table, error) { return exp.MobileScenario(memMB, 1, j) },
		} {
			tab, err := f()
			fatal(err)
			emit(tab)
		}
		ran++
	}
	if run("ablations") {
		memMB, pages := 1, int32(768)
		if scale == exp.Paper {
			memMB, pages = 6, 4096
		}
		j := *jobs
		for _, f := range []func() (*exp.Table, error){
			func() (*exp.Table, error) { return exp.AblationPartialIO(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.AblationSpanning(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.AblationBias(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.AblationThreshold(memMB, 1, j) },
			func() (*exp.Table, error) { return exp.AblationCodec(memMB, pages, 1, j) },
			func() (*exp.Table, error) { return exp.AblationFixedSize(memMB, 1, j) },
		} {
			tab, err := f()
			fatal(err)
			emit(tab)
		}
		ran++
	}
	if run("faults") || *faultsFlag {
		opts := exp.DefaultFaultsOptions(scale)
		opts.Parallelism = *jobs
		if *faultRate >= 0 {
			// Keep the rate-0 baseline: overhead is relative to it.
			opts.Rates = []float64{0}
			if *faultRate > 0 {
				opts.Rates = append(opts.Rates, *faultRate)
			}
		}
		res, err := exp.FaultSweep(opts)
		fatal(err)
		emit(res.Table())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	elapsed := time.Since(start).Round(time.Millisecond) //cclint:ignore walltime -- deliberate host-time reading: the summary is explicitly labelled "(host time)" in the output
	fmt.Printf("ccbench: %d experiment group(s) at %s scale in %v (host time)\n",
		ran, scale, elapsed)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}
