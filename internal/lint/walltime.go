package lint

import (
	"go/ast"
	"slices"
	"strconv"
	"strings"
)

// wallClockFuncs are the package-level time functions that read or depend
// on the host clock. Types and pure arithmetic (time.Duration,
// time.Microsecond, d.Round(...)) are fine: the simulation uses
// time.Duration as its unit of virtual time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime forbids host wall-clock calls. Every simulated cost must come
// from the virtual clock (internal/sim.Clock): the paper's Table 1 and
// Figure 3 numbers are virtual-time artifacts, so one stray time.Now()
// quietly couples results to the host machine, the Go scheduler and the
// garbage collector. The analyzer runs over the whole module — command
// front-ends that deliberately report host time (ccbench's closing
// summary) carry an ignore directive with the reason spelled out.
type Walltime struct{}

// Name implements Analyzer.
func (Walltime) Name() string { return "walltime" }

// Doc implements Analyzer.
func (Walltime) Doc() string {
	return "forbid host wall-clock reads (time.Now/Since/Sleep/...); the virtual clock is the only time source"
}

// Severity implements Analyzer.
func (Walltime) Severity() Severity { return SevError }

// Check implements Analyzer.
func (w Walltime) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		names := importNames(f, "time")
		if len(names) == 0 {
			continue
		}
		for _, name := range names {
			if name == "." {
				out = append(out, diag(pkg, w.Name(), f.Name,
					"dot-import of package time hides wall-clock calls from walltime; import it qualified"))
			}
		}
		// First pass: remember which selectors are call targets, so the
		// second pass can tell time.Now() apart from time.Now handed around
		// as a value (a callback, a field default, a func variable) — the
		// value form smuggles the host clock past a call-only check.
		callFuns := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					callFuns[sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !slices.Contains(names, id.Name) {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			if callFuns[sel] {
				out = append(out, diag(pkg, w.Name(), sel,
					"wall-clock call time.%s contaminates virtual-time measurements; advance the sim clock instead",
					sel.Sel.Name))
			} else {
				out = append(out, diag(pkg, w.Name(), sel,
					"wall-clock func time.%s referenced as a value; whatever calls it reads the host clock",
					sel.Sel.Name))
			}
			return true
		})
	}
	return out
}

// importNames returns the local names under which a file imports the
// given path ("." for a dot-import, "_" imports are skipped).
func importNames(f *ast.File, path string) []string {
	var names []string
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		switch {
		case imp.Name == nil:
			base := p
			if i := strings.LastIndexByte(base, '/'); i >= 0 {
				base = base[i+1:]
			}
			names = append(names, base)
		case imp.Name.Name == "_":
		default:
			names = append(names, imp.Name.Name)
		}
	}
	return names
}
