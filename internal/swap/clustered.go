package swap

import (
	"fmt"
	"sort"

	"compcache/internal/fault"
	"compcache/internal/fs"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
)

// ClusterConfig configures a Clustered store.
type ClusterConfig struct {
	// PageSize is the uncompressed page size (raw items must be exactly
	// this long).
	PageSize int

	// FragSize is the uniform fragment size compressed pages are padded to;
	// the paper uses 1 KByte.
	FragSize int

	// ClusterBytes is the target size of one clustered write; the paper
	// writes 32 KBytes of compressed pages at once.
	ClusterBytes int

	// SpanBlocks controls whether a page's fragments may cross file-block
	// boundaries. When false, pages are padded to the next block, which
	// "increases fragmentation and the effective bandwidth for writes to
	// the backing store correspondingly decreases" (§4.3); when true, a
	// fault on a spanning page must read both blocks.
	SpanBlocks bool

	// GCTriggerFrac runs a compaction pass when garbage (padding plus freed
	// fragments) exceeds this fraction of the swap file's span and at least
	// one cluster's worth of garbage exists. Zero selects the default 0.5.
	GCTriggerFrac float64

	// CommitRecords enables the recoverable on-media format: every clustered
	// write appends a checksummed commit record (sequence number plus the
	// batch's page identities, extents, and data checksums) in trailing
	// fragments of the cluster, and garbage collection switches from the
	// in-place dense rewrite to crash-safe relocation that never overwrites
	// live data. RecoverClustered can then rebuild the page map from the
	// media image. Records cost space and the relocating GC copies less
	// densely, so the format is off by default; the machine enables it
	// automatically when crash injection is configured.
	//
	// The format assumes Item.Sum is core.Checksum (CRC-32) of Item.Data,
	// which is what the machine stores; recovery uses it to detect torn
	// data.
	CommitRecords bool

	// Paranoid re-validates the fragment accounting after every garbage
	// collection, turning silent drift into an immediate error.
	Paranoid bool
}

func (c *ClusterConfig) setDefaults() {
	if c.FragSize == 0 {
		c.FragSize = 1024
	}
	if c.ClusterBytes == 0 {
		c.ClusterBytes = 32 * 1024
	}
	if c.GCTriggerFrac == 0 {
		c.GCTriggerFrac = 0.5
	}
}

// validate checks the configuration against the file system's geometry.
func (c ClusterConfig) validate(blockSize int) error {
	if c.PageSize <= 0 || c.PageSize%blockSize != 0 {
		return fmt.Errorf("swap: page size %d incompatible with block size %d", c.PageSize, blockSize)
	}
	if c.FragSize <= 0 || blockSize%c.FragSize != 0 {
		return fmt.Errorf("swap: fragment size %d must divide block size %d", c.FragSize, blockSize)
	}
	if c.ClusterBytes < blockSize || c.ClusterBytes%blockSize != 0 {
		return fmt.Errorf("swap: cluster size %d must be a positive multiple of block size %d",
			c.ClusterBytes, blockSize)
	}
	if c.GCTriggerFrac < 0 || c.GCTriggerFrac > 1 {
		return fmt.Errorf("swap: GCTriggerFrac %g out of [0,1]", c.GCTriggerFrac)
	}
	return nil
}

// extent records where a page lives in the swap file.
type extent struct {
	start      int32 // first fragment index
	nfrags     int32
	length     int32 // exact byte length of the stored data
	compressed bool
	sum        uint32 // integrity checksum of the stored bytes
}

// Neighbor is a page incidentally read by a clustered read because it shares
// the file blocks of the requested page.
type Neighbor struct {
	Key        PageKey
	Data       []byte
	Compressed bool
	Sum        uint32 // integrity checksum recorded when the page was stored
}

// Clustered is the compressed backing store of §4.3. Compressed pages are
// padded to FragSize, batched into clustered writes, and located through an
// explicit page map; stale copies accumulate as garbage until a compaction
// pass rewrites the live data densely.
type Clustered struct {
	cfg       ClusterConfig //cclint:ignore snapcover -- config: fixed at construction; the restore target is built with the same config
	fsys      *fs.FS        //cclint:ignore snapcover -- wiring: injected at construction, not replay state
	file      *fs.File      //cclint:ignore snapcover -- wiring: handle reopened through the restored fs
	blockSize int           //cclint:ignore snapcover -- config: derived from the fs block size at construction
	fragsPerB int           //cclint:ignore snapcover -- config: derived from cfg at construction, identical in the restore target

	// marked[i] is true when fragment i is part of a live extent or is
	// cluster padding; free (reusable) fragments are false.
	marked  []bool
	extents map[PageKey]extent
	//cclint:ignore snapcover -- derived: reverse index rebuilt from extents on restore
	byStart map[int32]PageKey
	liveFr  int  // fragments covered by live extents
	padFr   int  // marked fragments belonging to no extent (padding)
	hint    int  // first-fit search start
	inGC    bool //cclint:ignore snapcover -- transient: only true inside a GC pass, never at a snapshot boundary

	// Commit-record state (CommitRecords mode): seq orders clusters for
	// recovery; attempted remembers the item checksums of a crash-torn
	// write, whose pages carry no durability promise (VerifyRecovery
	// consults it).
	seq       uint64
	attempted map[PageKey]uint32

	bus *obs.Bus //cclint:ignore snapcover -- wiring: observability bus attached separately
	//cclint:ignore snapcover -- wiring: injected at construction, not replay state
	clock *sim.Clock // event timestamps only; the fs layer charges the I/O

	// readBuf and readNbrs back the slices Read returns; they are reused on
	// the next Read, which is why Read's results are borrow-only.
	readBuf  []byte     //cclint:ignore snapcover -- scratch: Read's borrow-only result buffer, dead between calls
	readNbrs []Neighbor //cclint:ignore snapcover -- scratch: Read's borrow-only neighbor list, dead between calls

	// placeBuf and writeBuf are WriteCluster's layout and serialization
	// scratch, reused across calls; the device copies the bytes out before
	// WriteCluster returns, so nothing aliases them afterwards.
	placeBuf []placement //cclint:ignore snapcover -- scratch: WriteCluster's layout buffer, dead between calls
	writeBuf []byte      //cclint:ignore snapcover -- scratch: WriteCluster's serialization buffer, dead between calls

	st stats.Swap
}

// NewClustered creates a clustered store backed by a dedicated swap file.
func NewClustered(cfg ClusterConfig, fsys *fs.FS) (*Clustered, error) {
	cfg.setDefaults()
	if err := cfg.validate(fsys.BlockSize()); err != nil {
		return nil, err
	}
	return makeClustered(cfg, fsys, fsys.Create("swap.clustered")), nil
}

// makeClustered builds the store around an existing file (recovery) or a
// fresh one; cfg must already be defaulted and validated.
func makeClustered(cfg ClusterConfig, fsys *fs.FS, file *fs.File) *Clustered {
	c := &Clustered{
		cfg:       cfg,
		fsys:      fsys,
		file:      file,
		blockSize: fsys.BlockSize(),
		fragsPerB: fsys.BlockSize() / cfg.FragSize,
		extents:   make(map[PageKey]extent),
		byStart:   make(map[int32]PageKey),
	}
	if cfg.CommitRecords {
		c.seq = 1
	}
	return c
}

// SetObserver wires the store to a machine's event bus; nil disables
// emission. The clock supplies event timestamps (the store itself charges no
// time — the fs layer below it does).
func (c *Clustered) SetObserver(b *obs.Bus, clock *sim.Clock) {
	c.bus = b
	c.clock = clock
}

// Stats returns a snapshot of the store's counters, including current
// fragment accounting: FragsLive counts fragments of live extents and
// FragsFree counts garbage (holes plus padding) within the file's span.
func (c *Clustered) Stats() stats.Swap {
	st := c.st
	st.FragsLive = uint64(c.liveFr)
	st.FragsFree = uint64(len(c.marked) - c.liveFr)
	return st
}

// Has reports whether the store holds a copy of the page.
func (c *Clustered) Has(key PageKey) bool {
	_, ok := c.extents[key]
	return ok
}

// Invalidate frees the page's fragments (the page was modified in memory, so
// the stored copy is stale).
func (c *Clustered) Invalidate(key PageKey) {
	if e, ok := c.extents[key]; ok {
		c.freeExtent(key, e)
	}
}

func (c *Clustered) freeExtent(key PageKey, e extent) {
	for i := e.start; i < e.start+e.nfrags; i++ {
		c.marked[i] = false
	}
	c.liveFr -= int(e.nfrags)
	if int(e.start) < c.hint {
		c.hint = int(e.start)
	}
	delete(c.extents, key)
	delete(c.byStart, e.start)
}

// fragsFor reports the padded fragment count for n bytes of data.
func (c *Clustered) fragsFor(n int) int32 {
	return int32((n + c.cfg.FragSize - 1) / c.cfg.FragSize)
}

type placement struct {
	item   Item
	rel    int32 // fragment offset from cluster start
	nfrags int32
}

// WriteCluster writes a batch of pages in one clustered operation. Items
// already in the store are relocated; their old fragments become garbage,
// which is what forces the §4.3 garbage collection. When async is true the
// device write is queued without blocking the caller (the cleaner path);
// otherwise the caller waits for it.
//
// Callers should batch items to about ClusterBytes; WriteCluster itself
// accepts any batch and issues one device operation per call.
func (c *Clustered) WriteCluster(items []Item, async bool) error {
	if len(items) == 0 {
		return nil
	}
	// Compact first if garbage demands it. GC reenters WriteCluster for its
	// dense rewrite, and those inner calls use the shared placeBuf/writeBuf
	// scratch — so it must finish before this call lays anything out in
	// them.
	if err := c.maybeGC(); err != nil {
		return err
	}
	// Lay the items out relative to the cluster start. The cluster start is
	// always block-aligned in whole-block mode, so relative block
	// boundaries coincide with absolute ones.
	blockFrags := int32(c.fragsPerB)
	placements := c.placeBuf[:0]
	var cursor, liveFrags int32
	for _, it := range items {
		if !it.Compressed && len(it.Data) != c.cfg.PageSize {
			// Invariant: the compression cache pads or rejects short data;
			// an odd-sized raw item is a programming error, not a fault.
			panic(fmt.Sprintf("swap: raw item for %v is %d bytes, want %d", it.Key, len(it.Data), c.cfg.PageSize))
		}
		nf := c.fragsFor(len(it.Data))
		if !c.cfg.SpanBlocks {
			if within := cursor % blockFrags; within != 0 && within+nf > blockFrags {
				cursor += blockFrags - within // pad to the next block
			}
		}
		placements = append(placements, placement{it, cursor, nf})
		cursor += nf
		liveFrags += nf
	}
	c.placeBuf = placements
	// In the recoverable format the cluster carries a trailing commit
	// record; its fragments are cluster padding (never entered in byStart,
	// so reads skip them) and travel in the same device transfer as the
	// data, committing — or tearing — with it.
	recRel := cursor
	var recFrags int32
	if c.cfg.CommitRecords {
		recFrags = c.fragsFor(ccrFixed + ccrRecordBytes*len(items))
	}
	total := cursor + recFrags
	wholeBlocks := !c.fsys.AllowPartialIO()
	if wholeBlocks {
		if rem := total % blockFrags; rem != 0 {
			total += blockFrags - rem
		}
	}

	start := c.alloc(total, wholeBlocks)

	// Serialize the cluster and issue the device write before touching the
	// page map, so a failed write leaves the old copies authoritative. The
	// reused buffer is re-zeroed first: padding gaps between placements
	// must hold deterministic zeroes on the platter, not stale bytes.
	n := int(total) * c.cfg.FragSize
	if cap(c.writeBuf) < n {
		c.writeBuf = make([]byte, n)
	}
	buf := c.writeBuf[:n]
	for i := range buf {
		buf[i] = 0
	}
	for _, p := range placements {
		copy(buf[int(p.rel)*c.cfg.FragSize:], p.item.Data)
	}
	if c.cfg.CommitRecords {
		ccrEncode(buf[int(recRel)*c.cfg.FragSize:], c.seq, start, recFrags, placements)
	}
	off := int64(start) * int64(c.cfg.FragSize)
	var err error
	if async {
		_, err = c.file.RawWriteAsync(buf, off, n)
	} else {
		err = c.file.RawWrite(buf, off, n)
	}
	if err != nil {
		// Return the just-allocated run; nothing was relocated.
		for i := start; i < start+total; i++ {
			c.marked[i] = false
		}
		if int(start) < c.hint {
			c.hint = int(start)
		}
		if c.cfg.CommitRecords && fault.IsCrash(err) {
			// The machine is dead; remember what was in flight so the
			// recovery oracle knows these pages carry no durability promise
			// (a fully-survived tear may still resurface them).
			if c.attempted == nil {
				c.attempted = make(map[PageKey]uint32, len(placements))
			}
			for _, p := range placements {
				c.attempted[p.item.Key] = p.item.Sum
			}
		}
		return err
	}

	// Record the new locations, freeing any old copies.
	for _, p := range placements {
		if old, ok := c.extents[p.item.Key]; ok {
			c.freeExtent(p.item.Key, old)
		}
		e := extent{
			start:      start + p.rel,
			nfrags:     p.nfrags,
			length:     int32(len(p.item.Data)),
			compressed: p.item.Compressed,
			sum:        p.item.Sum,
		}
		c.extents[p.item.Key] = e
		c.byStart[e.start] = p.item.Key
	}
	c.liveFr += int(liveFrags)
	c.padFr += int(total - liveFrags)
	if c.cfg.CommitRecords {
		c.seq++
	}
	if !c.inGC {
		c.st.PagesOut += uint64(len(items))
		if c.bus.Enabled(obs.ClassFlush) {
			c.bus.Emit(obs.Event{
				T: c.clock.Now(), Class: obs.ClassFlush, Sub: obs.SubSwap,
				Bytes: int64(n), Aux: int64(len(items)),
			})
		}
	}
	return nil
}

// alloc finds (first-fit) or creates a run of n free fragments, block-aligned
// when blockAligned is set, marks the run, and returns its start.
func (c *Clustered) alloc(n int32, blockAligned bool) int32 {
	step := 1
	if blockAligned {
		step = c.fragsPerB
	}
	for startAt := c.hint - c.hint%step; ; startAt += step {
		for int(n) > len(c.marked)-startAt {
			c.marked = append(c.marked, false)
		}
		run := true
		for i := 0; i < int(n); i++ {
			if c.marked[startAt+i] {
				run = false
				break
			}
		}
		if !run {
			continue
		}
		for i := 0; i < int(n); i++ {
			c.marked[startAt+i] = true
		}
		if startAt == c.hint {
			c.hint = startAt + int(n)
		}
		return int32(startAt)
	}
}

// Read fetches the page, honouring the whole-block rule: in whole-block mode
// the device reads every block the page's fragments touch, and every other
// page wholly contained in those blocks is returned as a neighbor (the
// caller typically inserts neighbors into the compression cache as clean
// pages). It reports ok=false if the page is not stored. The returned sum is
// the integrity checksum recorded when the page was stored; the caller
// verifies it after any decompression-side corruption checks.
//
// The returned data and neighbor Data slices are views into a per-device
// read buffer that the next Read call reuses: callers must copy anything
// they retain before reading again (they may mutate the views in place,
// e.g. for fault injection, until then).
func (c *Clustered) Read(key PageKey) (data []byte, sum uint32, compressed bool, neighbors []Neighbor, ok bool, err error) {
	e, found := c.extents[key]
	if !found {
		return nil, 0, false, nil, false, nil
	}
	c.st.PagesIn++
	fragOff := int64(e.start) * int64(c.cfg.FragSize)
	byteLen := int(e.nfrags) * c.cfg.FragSize

	if c.fsys.AllowPartialIO() {
		buf := c.readBytes(byteLen)
		if err := c.file.RawRead(buf, fragOff, byteLen); err != nil {
			return nil, 0, false, nil, true, err
		}
		return buf[:e.length], e.sum, e.compressed, nil, true, nil
	}

	// Whole-block mode: read all covering blocks. A page that spans a block
	// boundary costs a two-block read (§4.3).
	bs := int64(c.blockSize)
	b0 := fragOff / bs
	b1 := (fragOff + int64(byteLen) + bs - 1) / bs
	buf := c.readBytes(int((b1 - b0) * bs))
	if err := c.file.RawRead(buf, b0*bs, len(buf)); err != nil {
		return nil, 0, false, nil, true, err
	}
	rel := fragOff - b0*bs
	data = buf[rel : rel+int64(e.length)]

	// Collect neighbors: pages whose extents lie wholly inside [b0, b1).
	neighbors = c.readNbrs[:0]
	firstFrag := int32(b0 * bs / int64(c.cfg.FragSize))
	lastFrag := int32(b1 * bs / int64(c.cfg.FragSize))
	for f := firstFrag; f < lastFrag; f++ {
		nk, okk := c.byStart[f]
		if !okk || nk == key {
			continue
		}
		ne := c.extents[nk]
		if ne.start+ne.nfrags > lastFrag {
			continue // partially outside the read
		}
		nrel := int64(ne.start)*int64(c.cfg.FragSize) - b0*bs
		neighbors = append(neighbors, Neighbor{
			Key:        nk,
			Data:       buf[nrel : nrel+int64(ne.length)],
			Compressed: ne.compressed,
			Sum:        ne.sum,
		})
	}
	c.readNbrs = neighbors
	if len(neighbors) == 0 {
		neighbors = nil
	}
	return data, e.sum, e.compressed, neighbors, true, nil
}

// readBytes returns the reusable read buffer grown to n bytes.
func (c *Clustered) readBytes(n int) []byte {
	if cap(c.readBuf) < n {
		c.readBuf = make([]byte, n)
	}
	return c.readBuf[:n]
}

// maybeGC compacts the swap file when garbage (holes plus padding) exceeds
// the configured fraction of the file's span.
func (c *Clustered) maybeGC() error {
	if c.inGC || len(c.marked) == 0 {
		return nil
	}
	garbage := len(c.marked) - c.liveFr
	minGarbage := c.cfg.ClusterBytes / c.cfg.FragSize
	if garbage < minGarbage {
		return nil
	}
	if float64(garbage)/float64(len(c.marked)) < c.cfg.GCTriggerFrac {
		return nil
	}
	return c.GC()
}

// gcPage is one live extent captured by the GC read sweep.
type gcPage struct {
	key  PageKey
	e    extent
	data []byte
}

// GC compacts the swap file: every live extent is read (block-granular) and
// rewritten densely toward the start of the file. The I/O is charged to the
// device like any other transfer — garbage collection of the backing store
// is not free, which is the cost §4.3 warns about. A device error during the
// read sweep aborts the pass with the page map untouched; an error during
// the rewrite propagates from WriteCluster with the already-rewritten
// extents recorded.
//
// The default rewrite resets the allocation bitmap and writes densely from
// fragment zero — over media that still holds the only copy of not-yet-
// rewritten pages, which a crash mid-pass would destroy. CommitRecords mode
// therefore relocates instead: live pages move through ordinary clustered
// writes into free space, each old copy freed only after its replacement's
// device write (and commit record) succeeds, so every instant of the pass
// leaves a recoverable image.
func (c *Clustered) GC() error {
	if c.inGC {
		return nil
	}
	c.inGC = true
	defer func() { c.inGC = false }()
	c.st.GCs++
	copiedBefore := c.st.GCBytesCopied
	defer func() {
		if c.bus.Enabled(obs.ClassSwapGC) {
			c.bus.Emit(obs.Event{
				T: c.clock.Now(), Class: obs.ClassSwapGC, Sub: obs.SubSwap,
				Bytes: int64(c.st.GCBytesCopied - copiedBefore),
			})
		}
	}()

	pages, err := c.sweepLive()
	if err != nil {
		return err
	}
	if c.cfg.CommitRecords {
		err = c.gcRelocate(pages)
	} else {
		err = c.gcRewrite(pages)
	}
	if err != nil {
		return err
	}
	if c.cfg.Paranoid {
		return c.CheckConsistency()
	}
	return nil
}

// sweepLive reads every live extent in one sequential sweep, block-granular
// in whole-block mode, returning the pages sorted by media position.
func (c *Clustered) sweepLive() ([]gcPage, error) {
	pages := make([]gcPage, 0, len(c.extents)) //cclint:ignore hotalloc -- compaction is rare and amortized; the live-page table is per-pass by design
	for key, e := range c.extents {
		pages = append(pages, gcPage{key: key, e: e}) //cclint:ignore hotalloc -- compaction is rare and amortized; the table was sized above, appends rarely grow it
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].e.start < pages[j].e.start }) //cclint:ignore hotalloc -- compaction is rare and amortized; sorting a per-pass table is fine

	for i := range pages {
		e := pages[i].e
		fragOff := int64(e.start) * int64(c.cfg.FragSize)
		byteLen := int(e.nfrags) * c.cfg.FragSize
		if c.fsys.AllowPartialIO() {
			buf := make([]byte, byteLen) //cclint:ignore hotalloc -- compaction is rare; each live extent keeps its own copy until the rewrite
			if err := c.file.RawRead(buf, fragOff, byteLen); err != nil {
				return nil, err
			}
			pages[i].data = buf[:e.length]
			c.st.GCBytesCopied += uint64(byteLen)
			continue
		}
		bs := int64(c.blockSize)
		b0 := fragOff / bs
		b1 := (fragOff + int64(byteLen) + bs - 1) / bs
		buf := make([]byte, (b1-b0)*bs) //cclint:ignore hotalloc -- compaction is rare; each live extent keeps its own copy until the rewrite
		if err := c.file.RawRead(buf, b0*bs, len(buf)); err != nil {
			return nil, err
		}
		rel := fragOff - b0*bs
		pages[i].data = buf[rel : rel+int64(e.length)]
		c.st.GCBytesCopied += uint64(len(buf))
	}
	return pages, nil
}

// gcRewrite is the in-place dense rewrite: reset the allocation state and
// write everything back from fragment zero.
func (c *Clustered) gcRewrite(pages []gcPage) error {
	c.marked = c.marked[:0]
	c.extents = make(map[PageKey]extent, len(pages))
	c.byStart = make(map[int32]PageKey, len(pages))
	c.liveFr = 0
	c.padFr = 0
	c.hint = 0
	return c.writeBack(pages)
}

// gcRelocate is the crash-safe compaction: live pages are rewritten through
// ordinary clustered writes (which only allocate free fragments and free
// each old copy after its replacement commits), then the pre-pass padding —
// old cluster padding and commit records, all of whose items the relocation
// has superseded — is released in one sweep.
func (c *Clustered) gcRelocate(pages []gcPage) error {
	// Snapshot the pre-pass padding fragments: marked but covered by no
	// extent. They stay marked for the whole pass (the allocator skips
	// marked fragments), so the indices remain valid.
	covered := make([]bool, len(c.marked)) //cclint:ignore hotalloc -- compaction is rare and amortized; the cover map is per-pass by design
	for _, e := range c.extents {
		for i := e.start; i < e.start+e.nfrags; i++ {
			covered[i] = true
		}
	}
	pad := make([]int32, 0, c.padFr) //cclint:ignore hotalloc -- compaction is rare and amortized; the pad list is per-pass by design
	for i, m := range c.marked {
		if m && !covered[i] {
			pad = append(pad, int32(i)) //cclint:ignore hotalloc -- compaction is rare and amortized; the list was sized above, appends never grow it
		}
	}

	c.hint = 0 // steer the relocation toward the lowest holes
	if err := c.writeBack(pages); err != nil {
		return err
	}
	for _, f := range pad {
		c.marked[f] = false
	}
	c.padFr -= len(pad)
	c.hint = 0
	return nil
}

// writeBack rewrites the swept pages in cluster-sized batches.
func (c *Clustered) writeBack(pages []gcPage) error {
	batch := make([]Item, 0, 32) //cclint:ignore hotalloc -- compaction is rare and amortized; the rewrite batch is per-pass by design
	batchBytes := 0
	for _, p := range pages {
		batch = append(batch, Item{Key: p.key, Data: p.data, Compressed: p.e.compressed, Sum: p.e.sum}) //cclint:ignore hotalloc -- compaction is rare and amortized; the batch was sized above, appends rarely grow it
		batchBytes += int(p.e.nfrags) * c.cfg.FragSize
		if batchBytes >= c.cfg.ClusterBytes {
			if err := c.WriteCluster(batch, false); err != nil {
				return err
			}
			batch = batch[:0]
			batchBytes = 0
		}
	}
	return c.WriteCluster(batch, false)
}

// CheckConsistency rebuilds the fragment accounting from the extent map and
// compares it with the incremental counters; tests call it after stressing
// the store.
func (c *Clustered) CheckConsistency() error {
	liveSet := make(map[int32]bool) //cclint:ignore hotalloc -- the paranoid audit is opt-in debugging, not the steady-state hot path
	for key, e := range c.extents {
		if got := c.byStart[e.start]; got != key {
			return fmt.Errorf("swap: byStart[%d] = %v, want %v", e.start, got, key)
		}
		for i := e.start; i < e.start+e.nfrags; i++ {
			if liveSet[i] {
				return fmt.Errorf("swap: fragment %d claimed by two extents", i)
			}
			liveSet[i] = true
			if int(i) >= len(c.marked) || !c.marked[i] {
				return fmt.Errorf("swap: extent %v covers unmarked fragment %d", key, i)
			}
		}
	}
	if len(liveSet) != c.liveFr {
		return fmt.Errorf("swap: liveFr counter %d, extents cover %d", c.liveFr, len(liveSet))
	}
	marked := 0
	for _, m := range c.marked {
		if m {
			marked++
		}
	}
	if marked != c.liveFr+c.padFr {
		return fmt.Errorf("swap: bitmap marks %d fragments, counters say %d live + %d padding",
			marked, c.liveFr, c.padFr)
	}
	return nil
}
