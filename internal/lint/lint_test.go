package lint

import (
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden tests are a hand-rolled, stdlib-only analysistest: the whole
// of testdata/src is mounted once as a pretend module named "compcache"
// (so fixture packages get import paths like
// "compcache/crosscredit/internal/machine" and can import each other),
// each fixture subtree is selected, the full analyzer suite (plus
// ignore-directive processing) runs over it, and every diagnostic must
// match a trailing
//
//	// want `regexp` [`regexp` ...]
//
// comment on its line — with unmatched wants and unexpected diagnostics
// both failing the test. Running the whole suite (not one analyzer per
// fixture) also locks in that analyzers do not fire on each other's clean
// examples.

var (
	fixtureOnce sync.Once
	fixtureMod  *Module
	fixtureErr  error
)

// fixtureModule loads testdata/src once for the whole test binary; the
// type check of the fixture tree (and the stdlib it imports) is the
// expensive part, and every golden test shares it.
func fixtureModule(t *testing.T) *Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureMod, fixtureErr = LoadTree(filepath.Join("testdata", "src"), "compcache")
	})
	if fixtureErr != nil {
		t.Fatalf("LoadTree(testdata/src): %v", fixtureErr)
	}
	if len(fixtureMod.TypeErrors) > 0 {
		t.Fatalf("fixture module must type-check cleanly, got: %v", fixtureMod.TypeErrors)
	}
	return fixtureMod
}

// selectFixture resolves one fixture subtree to its loaded packages.
func selectFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	mod := fixtureModule(t)
	pkgs, err := mod.Select(".", []string{dir + "/..."})
	if err != nil {
		t.Fatalf("Select(%s): %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Select(%s): no packages", dir)
	}
	return pkgs
}

// wantRE extracts the backquoted patterns after a "// want" marker.
var wantRE = regexp.MustCompile("`([^`]*)`")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants scans a package's raw source lines for want comments.
func parseWants(t *testing.T, pkg *Package) map[string]map[int][]*want {
	t.Helper()
	wants := map[string]map[int][]*want{}
	for file, lines := range pkg.Lines {
		for i, line := range lines {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, m[1], err)
				}
				if wants[file] == nil {
					wants[file] = map[int][]*want{}
				}
				wants[file][i+1] = append(wants[file][i+1], &want{re: re})
			}
		}
	}
	return wants
}

func runGolden(t *testing.T, dir string) {
	t.Helper()
	pkgs := selectFixture(t, dir)
	wants := map[string]map[int][]*want{}
	for _, pkg := range pkgs {
		for file, byLine := range parseWants(t, pkg) {
			wants[file] = byLine
		}
	}

	diags := Run(pkgs, All())
	for _, d := range diags {
		found := false
		for _, w := range wants[d.File][d.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want `%s`", file, line, w.re)
				}
			}
		}
	}
}

func TestWalltimeGolden(t *testing.T)    { runGolden(t, "testdata/src/walltime") }
func TestGlobalRandGolden(t *testing.T)  { runGolden(t, "testdata/src/globalrand") }
func TestMapRangeGolden(t *testing.T)    { runGolden(t, "testdata/src/maprange") }
func TestIgnoreGolden(t *testing.T)      { runGolden(t, "testdata/src/ignore") }
func TestMachineFixture(t *testing.T)    { runGolden(t, "testdata/src/internal/machine") }
func TestCrossCreditGolden(t *testing.T) { runGolden(t, "testdata/src/crosscredit") }
func TestErrDropGolden(t *testing.T)     { runGolden(t, "testdata/src/errdrop") }
func TestSharedWriteGolden(t *testing.T) { runGolden(t, "testdata/src/sharedwrite") }
func TestFloatOrderGolden(t *testing.T)  { runGolden(t, "testdata/src/floatorder") }
func TestObsCoverageGolden(t *testing.T) { runGolden(t, "testdata/src/obscoverage") }
func TestHotAllocGolden(t *testing.T)    { runGolden(t, "testdata/src/hotalloc") }
func TestBufOwnGolden(t *testing.T)      { runGolden(t, "testdata/src/bufown") }
func TestEffectDriftGolden(t *testing.T) { runGolden(t, "testdata/src/effectdrift") }
func TestNondetGolden(t *testing.T)      { runGolden(t, "testdata/src/nondet") }
func TestKernelProtoGolden(t *testing.T) { runGolden(t, "testdata/src/kernelproto") }
func TestSnapCoverGolden(t *testing.T)   { runGolden(t, "testdata/src/snapcover") }

// TestRunOnlyFilters pins the -only semantics: only selected analyzers
// fire, ignore directives naming unselected analyzers stay valid (no
// stale-directive noise in a filtered run), and an unknown name errors
// instead of silently checking nothing.
func TestRunOnlyFilters(t *testing.T) {
	pkgs := selectFixture(t, "testdata/src/ignore")

	diags, err := RunOnly(pkgs, All(), []string{"maprange"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "walltime" {
			t.Errorf("filtered run reported unselected analyzer: %v", d)
		}
		if strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("filtered run reported a stale directive it cannot judge: %v", d)
		}
	}

	diags, err = RunOnly(pkgs, All(), []string{"walltime"})
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, d := range diags {
		if d.Analyzer == "walltime" {
			hits++
		}
	}
	if hits == 0 {
		t.Error("RunOnly(walltime) found nothing in the ignore fixture")
	}

	if _, err := RunOnly(pkgs, All(), []string{"wibble"}); err == nil {
		t.Error("RunOnly with an unknown analyzer name must error")
	}
}

// findFn resolves a function or method by fixture package path suffix and
// name, through the call graph's deterministic node order.
func findFn(t *testing.T, mod *Module, pkgSuffix, name string) *types.Func {
	t.Helper()
	for _, node := range mod.Graph.order {
		if node.Fn.Name() == name && node.Pkg != nil && pathHasSuffix(node.Pkg.Path, pkgSuffix) {
			return node.Fn
		}
	}
	t.Fatalf("function %s not found in package %s", name, pkgSuffix)
	return nil
}

// TestCallGraphInterfaceResolution pins the engine property crosscredit's
// BadIface case rests on: a call through an interface gets dynamic edges
// to the concrete methods of every implementing module type.
func TestCallGraphInterfaceResolution(t *testing.T) {
	mod := fixtureModule(t)
	apply := findFn(t, mod, "crosscredit/internal/pipeline", "Apply")
	node := mod.Graph.Node(apply)
	if node == nil {
		t.Fatal("no graph node for pipeline.Apply")
	}
	var iface, concrete bool
	for _, e := range node.Out {
		if !e.Dynamic || e.Callee.Name() != "Compress" {
			continue
		}
		switch {
		case pathHasSuffix(pkgPath(e.Callee), "crosscredit/internal/compress"):
			concrete = true
		case pathHasSuffix(pkgPath(e.Callee), "crosscredit/internal/pipeline"):
			iface = true
		}
	}
	if !iface {
		t.Error("Apply has no dynamic edge to the interface method Codec.Compress")
	}
	if !concrete {
		t.Error("Apply has no dynamic edge to the implementation compress.LZ.Compress")
	}
}

// TestCallGraphReachesAndPath pins the fact-propagation primitives the
// interprocedural analyzers are built on.
func TestCallGraphReachesAndPath(t *testing.T) {
	mod := fixtureModule(t)
	credited := mod.Graph.Reaches(isClockAdvance)

	good := findFn(t, mod, "crosscredit/internal/machine", "GoodDeep")
	if !credited[good] {
		t.Error("GoodDeep should reach a clock advance through pipeline.ProcessCharged")
	}
	bad := findFn(t, mod, "crosscredit/internal/machine", "BadDeep")
	if credited[bad] {
		t.Error("BadDeep must not reach a clock advance")
	}

	chain := mod.Graph.Path(bad, isChargeableWork)
	if len(chain) != 3 || chain[0] != bad || chain[2].Name() != "Compress" {
		t.Errorf("Path(BadDeep → codec work) = %s, want a 3-hop chain ending in Compress", chainString(chain))
	}
}

// TestMachineFixtureScope pins the two properties the acceptance criteria
// name: the fixture directory resolves to an import path ending in
// internal/machine (so walltime provably rejects a time.Now() injected
// there, and clockcredit is in scope), and the suite reports findings —
// which is exactly what makes `cclint <fixture-dir>` exit 1.
func TestMachineFixtureScope(t *testing.T) {
	pkgs := selectFixture(t, "testdata/src/internal/machine")
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !strings.HasSuffix(pkg.Path, "internal/machine") {
		t.Fatalf("fixture import path %q does not end in internal/machine", pkg.Path)
	}
	diags := Run(pkgs, All())
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings; cclint would exit 0 on it")
	}
	var haveWalltime, haveCredit bool
	for _, d := range diags {
		switch d.Analyzer {
		case "walltime":
			haveWalltime = true
		case "clockcredit":
			haveCredit = true
		}
	}
	if !haveWalltime {
		t.Error("no walltime finding for time.Now() injected into internal/machine")
	}
	if !haveCredit {
		t.Error("no clockcredit finding in the machine fixture")
	}
}

// TestLoadModuleNeverLoadsTestdata: the module walk must skip testdata
// (so `cclint ./...` never trips over fixtures), must not load _test.go
// files (whose golden host-time fixtures are out of scope), and pattern
// selection must resolve only against the loaded set — naming a fixture
// directory outright selects nothing.
func TestLoadModuleNeverLoadsTestdata(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	haveLint := false
	for _, pkg := range mod.Pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("module walk loaded fixture package %s", pkg.Path)
		}
		if strings.HasSuffix(pkg.Path, "internal/lint") {
			haveLint = true
		}
		for file := range pkg.Lines {
			if strings.HasSuffix(file, "_test.go") {
				t.Errorf("loaded test file %s", file)
			}
		}
	}
	if !haveLint {
		t.Error("LoadModule(.) did not load compcache/internal/lint itself")
	}
	pkgs, err := mod.Select(".", []string{"testdata/src/walltime", "./testdata/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 0 {
		t.Errorf("selecting testdata paths matched %d packages, want 0", len(pkgs))
	}
}

// TestRunOutputSorted: diagnostics come back ordered by position so
// cclint's own output is deterministic.
func TestRunOutputSorted(t *testing.T) {
	pkgs := append(selectFixture(t, "testdata/src/walltime"), selectFixture(t, "testdata/src/errdrop")...)
	diags := Run(pkgs, All())
	if len(diags) < 2 {
		t.Fatalf("want several diagnostics to order, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

// TestSeverityStamped: Run stamps each finding with its analyzer's
// declared severity, and ErrorCount counts only error-severity ones.
func TestSeverityStamped(t *testing.T) {
	pkgs := selectFixture(t, "testdata/src/obscoverage")
	diags := Run(pkgs, All())
	if len(diags) == 0 {
		t.Fatal("obscoverage fixture produced no findings")
	}
	for _, d := range diags {
		if d.Severity == "" {
			t.Errorf("finding without severity: %v", d)
		}
		if d.Analyzer == "obscoverage" && d.Severity != SevWarn {
			t.Errorf("obscoverage finding has severity %q, want warn", d.Severity)
		}
	}
	if n := ErrorCount(diags); n != 0 {
		t.Errorf("obscoverage fixture has %d error-severity findings, want 0 (all warns)", n)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, ".cclint-baseline.json")
	diags := []Diagnostic{
		{Analyzer: "walltime", Severity: SevError, File: filepath.Join(root, "a.go"), Line: 3, Message: "m1"},
		{Analyzer: "walltime", Severity: SevError, File: filepath.Join(root, "a.go"), Line: 9, Message: "m1"},
		{Analyzer: "errdrop", Severity: SevError, File: filepath.Join(root, "b.go"), Line: 1, Message: "m2"},
	}
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d baseline entries, want 2 (same-message findings fold into a count)", len(entries))
	}
	if entries[0].File != "a.go" || entries[0].Count != 2 {
		t.Fatalf("entry[0] = %+v, want a.go with count 2", entries[0])
	}

	kept, suppressed := ApplyBaseline(entries, root, diags)
	if len(kept) != 0 || suppressed != 3 {
		t.Fatalf("ApplyBaseline kept %d / suppressed %d, want 0 / 3", len(kept), suppressed)
	}

	// A new instance beyond the recorded count must still surface: the
	// baseline is line-number-free but budgeted.
	extra := append(diags, Diagnostic{Analyzer: "walltime", Severity: SevError, File: filepath.Join(root, "a.go"), Line: 20, Message: "m1"})
	kept, suppressed = ApplyBaseline(entries, root, extra)
	if len(kept) != 1 || suppressed != 3 {
		t.Fatalf("over-budget ApplyBaseline kept %d / suppressed %d, want 1 / 3", len(kept), suppressed)
	}
	if kept[0].Line != 20 {
		t.Fatalf("surviving finding at line %d, want the budget-exceeding one at 20", kept[0].Line)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	entries, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || entries != nil {
		t.Fatalf("missing baseline: got (%v, %v), want (nil, nil)", entries, err)
	}
}

func TestBaselineEmptyWritesCanonicalForm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := WriteBaseline(path, "", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("empty baseline serializes as %q, want []", data)
	}
}
