// Filediff: the paper's best-case application (compare, 2.68x) run as a
// standalone scenario: diffing two large similar files with a banded
// dynamic-programming edit distance whose working array far exceeds
// physical memory.
//
//	go run ./examples/filediff [-n length] [-band width] [-mem MB]
package main

import (
	"flag"
	"fmt"
	"log"

	"compcache"
)

func main() {
	n := flag.Int("n", 12288, "sequence length (file size being diffed)")
	band := flag.Int("band", 512, "band width around the diagonal")
	memMB := flag.Int("mem", 2, "physical memory in MB")
	flag.Parse()

	arrayMB := float64(*n) * float64(*band) / (1 << 20)
	fmt.Printf("diffing two %d-element files; DP band array %.1f MB vs %d MB of memory\n\n",
		*n, arrayMB, *memMB)

	mk := func() *compcache.Compare {
		return &compcache.Compare{N: *n, Band: *band, MutationRate: 0.05, Seed: 7}
	}
	base := compcache.Default(int64(*memMB) << 20)
	cmp, err := compcache.RunBoth(base, base.WithCC(), mk())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unmodified system:       %v\n", cmp.Std.Time)
	fmt.Printf("with compression cache:  %v\n", cmp.CC.Time)
	fmt.Printf("speedup:                 %.2fx (paper measured 2.68x)\n\n", cmp.Speedup())
	fmt.Printf("the band array compressed to %.0f%% of its size; %.1f%% of pages missed the 4:3 threshold\n",
		100*cmp.CC.Comp.Ratio(), 100*cmp.CC.Comp.UncompressibleFrac())
	fmt.Printf("cache hits served %.0f%% of faults (sequential passes keep the fault rate low)\n",
		100*cmp.CC.CC.HitRate())
}
