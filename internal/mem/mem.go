// Package mem manages the simulated machine's physical page frames.
//
// A frame is a real []byte of one page; frames are owned at any instant by
// exactly one consumer — the VM system (an uncompressed resident page), the
// compression cache, the file system's buffer cache — or they are free. The
// pool enforces conservation: frames never appear or disappear, which is one
// of the property-tested invariants of the simulation (the three-way memory
// trade of §4.2 of the paper only makes sense if the three consumers compete
// for a fixed stock).
package mem

import "fmt"

// FrameID names a physical page frame. NoFrame is the zero of the type and
// never names a real frame.
type FrameID int32

// NoFrame is the sentinel "no frame" value.
const NoFrame FrameID = -1

// Owner identifies which subsystem holds a frame.
type Owner int8

// Frame owners.
const (
	Free   Owner = iota // on the free list
	VM                  // holds an uncompressed resident virtual-memory page
	CC                  // mapped into the compression cache
	FS                  // holds a file-system buffer-cache block
	Kernel              // pinned kernel metadata (page tables, CC headers)
	numOwners
)

// String returns the owner name.
func (o Owner) String() string {
	switch o {
	case Free:
		return "free"
	case VM:
		return "vm"
	case CC:
		return "cc"
	case FS:
		return "fs"
	case Kernel:
		return "kernel"
	default:
		return fmt.Sprintf("owner(%d)", int(o))
	}
}

// Pool is the fixed stock of physical page frames.
type Pool struct {
	pageSize int
	data     []byte // one backing array, sliced per frame
	owner    []Owner
	free     []FrameID
	counts   [numOwners]int //cclint:ignore snapcover -- derived: recomputed from the owner table on restore
}

// NewPool creates a pool of n frames of pageSize bytes each.
func NewPool(n, pageSize int) *Pool {
	if n <= 0 || pageSize <= 0 {
		// Invariant: construction-time configuration error; machine.Config
		// validation rejects bad geometry before reaching here.
		panic(fmt.Sprintf("mem: invalid pool geometry %d x %d", n, pageSize))
	}
	p := &Pool{
		pageSize: pageSize,
		data:     make([]byte, n*pageSize),
		owner:    make([]Owner, n),
		free:     make([]FrameID, 0, n),
	}
	// Push in reverse so frame 0 is handed out first; allocation order is
	// deterministic, which keeps runs reproducible.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, FrameID(i))
	}
	p.counts[Free] = n
	return p
}

// PageSize reports the frame size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// Total reports the number of frames in the pool.
func (p *Pool) Total() int { return len(p.owner) }

// FreeCount reports the number of free frames.
func (p *Pool) FreeCount() int { return p.counts[Free] }

// OwnedBy reports how many frames o currently holds.
func (p *Pool) OwnedBy(o Owner) int { return p.counts[o] }

// Alloc takes a free frame for owner o. It reports ok=false when the pool is
// exhausted; the caller must then reclaim a frame through the replacement
// policy. The frame's contents are NOT zeroed: like real page frames they
// hold whatever the previous owner left, and callers that need zero-fill
// (fresh VM pages) must clear them.
func (p *Pool) Alloc(o Owner) (FrameID, bool) {
	if o == Free || o >= numOwners {
		// Invariant: owners are compile-time constants; an invalid one is a
		// programming error, not a condition injected faults can create.
		panic(fmt.Sprintf("mem: Alloc for invalid owner %v", o))
	}
	if len(p.free) == 0 {
		return NoFrame, false
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.owner[id] = o
	p.counts[Free]--
	p.counts[o]++
	return id, true
}

// Release returns a frame to the free list.
func (p *Pool) Release(id FrameID) {
	o := p.ownerOf(id)
	if o == Free {
		// Invariant: frame ownership is tracked exactly (CheckConservation);
		// a double release is accounting corruption, the simulated kernel's
		// equivalent of a double free — fail loudly, never degrade.
		panic(fmt.Sprintf("mem: double release of frame %d", id))
	}
	p.counts[o]--
	p.counts[Free]++
	p.owner[id] = Free
	p.free = append(p.free, id)
}

// Transfer reassigns a frame from its current owner to o without it passing
// through the free list. The eviction path uses this when a frame moves
// between the VM system and the compression cache in one step.
func (p *Pool) Transfer(id FrameID, o Owner) {
	if o == Free || o >= numOwners {
		// Invariant: owners are compile-time constants (see Alloc).
		panic(fmt.Sprintf("mem: Transfer to invalid owner %v", o))
	}
	cur := p.ownerOf(id)
	if cur == Free {
		// Invariant: transferring a free frame is accounting corruption,
		// like a double release — fail loudly, never degrade.
		panic(fmt.Sprintf("mem: Transfer of free frame %d", id))
	}
	p.counts[cur]--
	p.counts[o]++
	p.owner[id] = o
}

// Owner reports the current owner of a frame.
func (p *Pool) Owner(id FrameID) Owner { return p.ownerOf(id) }

// Bytes returns the frame's backing bytes (always pageSize long).
func (p *Pool) Bytes(id FrameID) []byte {
	p.ownerOf(id) // bounds check
	off := int(id) * p.pageSize
	return p.data[off : off+p.pageSize : off+p.pageSize]
}

// CheckConservation verifies that ownership counts are consistent with the
// per-frame table and sum to the pool size. Tests call it after stressing
// the policy machinery.
func (p *Pool) CheckConservation() error {
	var counts [numOwners]int
	for _, o := range p.owner {
		counts[o]++
	}
	if counts != p.counts {
		return fmt.Errorf("mem: ownership counts drifted: table %v, counters %v", counts, p.counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != len(p.owner) {
		return fmt.Errorf("mem: frame count drifted: %d != %d", sum, len(p.owner))
	}
	if counts[Free] != len(p.free) {
		return fmt.Errorf("mem: free list length %d != free count %d", len(p.free), counts[Free])
	}
	return nil
}

func (p *Pool) ownerOf(id FrameID) Owner {
	if id < 0 || int(id) >= len(p.owner) {
		// Invariant: frame ids only come from Alloc; an out-of-range id is
		// the simulated equivalent of a wild kernel pointer.
		panic(fmt.Sprintf("mem: bad frame id %d (pool has %d frames)", id, len(p.owner)))
	}
	return p.owner[id]
}
