package sim

import "time"

// CostModel holds the CPU-side costs of the simulated machine. The defaults
// approximate the DECstation 5000/200 used in the paper (a ~25-MHz R3000,
// about 20 integer MIPS).
//
// All bandwidth figures are in bytes per second of virtual time. The
// compression and decompression bandwidths are defaults only: when a real
// codec is timed, the machine charges bytes/bandwidth for the bytes actually
// processed, preserving the paper's property that decompression is roughly
// twice as fast as compression for LZRW1.
type CostModel struct {
	// MemRef is the cost of one simulated memory reference that hits in an
	// uncompressed resident page (a handful of instructions in the simulated
	// application plus the reference itself).
	MemRef Duration

	// FaultOverhead is the software overhead of taking a page fault,
	// excluding any compression or I/O work (trap handling, page-table
	// walks, list manipulation).
	FaultOverhead Duration

	// PageCopy is the cost of copying one full page (e.g. moving a page
	// between a transfer buffer and its frame).
	PageCopy Duration

	// CompressBW is the throughput of software compression, in bytes of
	// *input* consumed per second.
	CompressBW float64

	// DecompressBW is the throughput of software decompression, in bytes of
	// *output* produced per second. For LZRW1 this is roughly twice
	// CompressBW, the ratio Figure 1 assumes.
	DecompressBW float64
}

// DefaultCostModel returns costs approximating the paper's DECstation
// 5000/200. LZRW1 on that machine ran at roughly 1 MB/s compressing and
// 2 MB/s decompressing; a simulated memory reference is charged 250ns —
// a handful of instructions on the ~20-MIPS R3000 — so CPU-bound phases of
// the applications are weighted the way the 1993 machine weighted them.
func DefaultCostModel() CostModel {
	return CostModel{
		MemRef:        250 * time.Nanosecond,
		FaultOverhead: 500 * time.Microsecond,
		PageCopy:      200 * time.Microsecond,
		CompressBW:    1.0e6,
		DecompressBW:  2.0e6,
	}
}

// CompressCost reports the virtual time to compress n input bytes.
func (m CostModel) CompressCost(n int) Duration {
	return bwCost(n, m.CompressBW)
}

// DecompressCost reports the virtual time to decompress to n output bytes.
func (m CostModel) DecompressCost(n int) Duration {
	return bwCost(n, m.DecompressBW)
}

func bwCost(n int, bw float64) Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return Duration(float64(n) / bw * float64(time.Second))
}
