package core

import (
	"fmt"

	"compcache/internal/mem"
	"compcache/internal/sim"
	"compcache/internal/snap"
	"compcache/internal/swap"
)

// SnapshotTo serializes the cache ring exactly: an entry table (live and
// dead-but-referenced entries, discovered in ring order), the frames with
// their entry lists, and the insertion-order deque of live entries. Dead
// entries matter — they still occupy frame space and gate reclaimability —
// so they are captured with their keys but without data.
func (c *Cache) SnapshotTo(w *snap.Writer) {
	w.Section("core.cache")
	// Entries are collected in frame-ring order — deterministic, and the
	// order RestoreFrom rebuilds. (Index loops: f.entries is a slice, but
	// shares its name with the cache's entry map.)
	idx := make(map[*Entry]int)
	var list []*Entry
	for fi := 0; fi < len(c.frames); fi++ {
		f := c.frames[fi]
		for ei := 0; ei < len(f.entries); ei++ {
			e := f.entries[ei]
			if _, ok := idx[e]; !ok {
				idx[e] = len(list)
				list = append(list, e)
			}
		}
	}
	w.Int(len(list))
	for _, e := range list {
		w.I32(e.Key.Seg)
		w.I32(e.Key.Page)
		w.Bool(e.dead)
		w.Bool(e.Dirty)
		w.U32(e.Sum)
		w.I64(int64(e.insert))
		w.Bytes32(e.Data)
	}
	w.Int(len(c.frames))
	for _, f := range c.frames {
		w.I32(int32(f.id))
		w.Int(f.used)
		w.Int(len(f.entries))
		for _, e := range f.entries {
			w.Int(idx[e])
		}
	}
	n := 0
	for _, e := range c.order[c.head:] {
		if e != nil {
			n++
		}
	}
	w.Int(n)
	for _, e := range c.order[c.head:] {
		if e != nil {
			w.Int(idx[e])
		}
	}
	w.Int(c.liveBytes)
	w.Int(c.dirtyBytes)
	w.U64(c.st.Inserts)
	w.U64(c.st.Hits)
	w.U64(c.st.Misses)
	w.U64(c.st.CleanWrites)
	w.U64(c.st.FrameGrows)
	w.U64(c.st.FrameShrinks)
	w.U64(c.st.Dropped)
	w.U64(c.st.MidReclaims)
}

// RestoreFrom rebuilds the ring into a freshly constructed cache. The
// restored order deque is compacted (dead slots dropped, head reset to 0);
// that renumbering is invisible to behavior — OldestAge and Clean skip nil
// slots either way.
func (c *Cache) RestoreFrom(r *snap.Reader) error {
	r.Section("core.cache")
	if len(c.frames) > 0 && c.st.Inserts > 0 {
		return fmt.Errorf("core: restore into a cache that has been used")
	}
	nentries := r.Int()
	if r.Err() == nil && (nentries < 0 || nentries > 1<<24) {
		return fmt.Errorf("core: snapshot claims %d entries", nentries)
	}
	list := make([]*Entry, 0, nentries)
	for i := 0; i < nentries && r.Err() == nil; i++ {
		e := &Entry{}
		e.Key = swap.PageKey{Seg: r.I32(), Page: r.I32()}
		e.dead = r.Bool()
		e.Dirty = r.Bool()
		e.Sum = r.U32()
		e.insert = sim.Time(r.I64())
		data := r.Bytes32()
		if !e.dead {
			// Entry buffers must carry full page capacity: killed entries'
			// slabs are recycled and re-sliced up to the page size.
			e.Data = c.slabGet(len(data))
			copy(e.Data, data)
		}
		e.oidx = -1
		list = append(list, e)
	}
	nframes := r.Int()
	if r.Err() == nil && (nframes < 0 || nframes > 1<<24) {
		return fmt.Errorf("core: snapshot claims %d frames", nframes)
	}
	frames := make([]*ccFrame, 0, nframes)
	for i := 0; i < nframes && r.Err() == nil; i++ {
		f := &ccFrame{id: mem.FrameID(r.I32()), used: r.Int()}
		ne := r.Int()
		if r.Err() != nil {
			break
		}
		if ne < 0 || ne > 1<<20 {
			return fmt.Errorf("core: snapshot frame %d claims %d entries", i, ne)
		}
		for j := 0; j < ne && r.Err() == nil; j++ {
			k := r.Int()
			if r.Err() != nil {
				break
			}
			if k < 0 || k >= len(list) {
				return fmt.Errorf("core: snapshot frame %d references entry %d of %d", i, k, len(list))
			}
			e := list[k]
			f.entries = append(f.entries, e)
			e.frames = append(e.frames, f)
			e.refs++
		}
		frames = append(frames, f)
	}
	norder := r.Int()
	if r.Err() == nil && (norder < 0 || norder > len(list)) {
		return fmt.Errorf("core: snapshot order of %d entries exceeds entry table", norder)
	}
	order := make([]*Entry, 0, norder)
	for i := 0; i < norder && r.Err() == nil; i++ {
		k := r.Int()
		if r.Err() != nil {
			break
		}
		if k < 0 || k >= len(list) {
			return fmt.Errorf("core: snapshot order references entry %d of %d", k, len(list))
		}
		e := list[k]
		e.oidx = len(order)
		order = append(order, e)
	}
	liveBytes := r.Int()
	dirtyBytes := r.Int()
	var st [8]uint64
	for i := range st {
		st[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	// A prefilled cache (FixedFrames) grabbed frames at construction; the
	// pool restore has already rewritten ownership, so just drop the stand-in
	// ring before installing the snapshot's.
	c.frames = frames
	c.entries = make(map[swap.PageKey]*Entry, len(list))
	for _, e := range list {
		if !e.dead {
			c.entries[e.Key] = e
		}
	}
	c.order = order
	c.head = 0
	c.liveBytes = liveBytes
	c.dirtyBytes = dirtyBytes
	c.st.Inserts = st[0]
	c.st.Hits = st[1]
	c.st.Misses = st[2]
	c.st.CleanWrites = st[3]
	c.st.FrameGrows = st[4]
	c.st.FrameShrinks = st[5]
	c.st.Dropped = st[6]
	c.st.MidReclaims = st[7]
	return c.CheckConsistency()
}
