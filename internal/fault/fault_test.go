package fault

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"testing"
	"time"

	"compcache/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero config", Config{}, true},
		{"all rates at one", Config{ReadErrorRate: 1, WriteErrorRate: 1, CacheCorruptionRate: 1, SwapCorruptionRate: 1, LatencySpikeRate: 1, LatencySpike: time.Millisecond}, true},
		{"tiny rates", Config{ReadErrorRate: 1e-12, SwapCorruptionRate: math.SmallestNonzeroFloat64}, true},
		{"negative read rate", Config{ReadErrorRate: -0.1}, false},
		{"read rate above one", Config{ReadErrorRate: 1.0000001}, false},
		{"NaN write rate", Config{WriteErrorRate: math.NaN()}, false},
		{"Inf cache corruption rate", Config{CacheCorruptionRate: math.Inf(1)}, false},
		{"negative swap corruption rate", Config{SwapCorruptionRate: -1}, false},
		{"negative spike rate", Config{LatencySpikeRate: -0.5}, false},
		{"spike rate without spike", Config{LatencySpikeRate: 0.5}, false},
		{"negative spike", Config{LatencySpike: -time.Millisecond}, false},
		{"spike without rate is fine", Config{LatencySpike: time.Millisecond}, true},
		{"negative ActiveAfter", Config{ActiveAfter: -time.Second}, false},
		{"negative ActiveFor", Config{ActiveFor: -time.Second}, false},
		{"activity window", Config{ActiveAfter: time.Second, ActiveFor: time.Minute}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	if _, err := New(Config{ReadErrorRate: 2}, &sim.Clock{}); err == nil {
		t.Error("New accepted an invalid config")
	}
}

// decisions drives one injector through a fixed schedule of opportunities
// and encodes every decision as a string.
func decisions(t *testing.T, cfg Config) string {
	t.Helper()
	var clock sim.Clock
	in, err := New(cfg, &clock)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	frag := make([]byte, 64)
	for i := 0; i < 400; i++ {
		clock.Advance(time.Millisecond)
		switch i % 5 {
		case 0:
			out += fmt.Sprint(in.DiskRead() != nil)
		case 1:
			out += fmt.Sprint(in.DiskWrite() != nil)
		case 2:
			out += fmt.Sprint(in.Latency())
		case 3:
			out += fmt.Sprint(in.CorruptCache(frag))
		case 4:
			out += fmt.Sprint(in.CorruptSwap(frag))
		}
		out += ","
	}
	out += fmt.Sprintf("%+v", in.Stats())
	return out
}

func TestDeterministicDecisionStream(t *testing.T) {
	cfg := Config{
		Seed:                42,
		ReadErrorRate:       0.1,
		WriteErrorRate:      0.1,
		CacheCorruptionRate: 0.2,
		SwapCorruptionRate:  0.05,
		LatencySpikeRate:    0.3,
		LatencySpike:        2 * time.Millisecond,
	}
	a, b := decisions(t, cfg), decisions(t, cfg)
	if a != b {
		t.Fatal("identical seed and config produced different decision streams")
	}
	cfg.Seed = 43
	if decisions(t, cfg) == a {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	frag := []byte{1, 2, 3}
	if err := in.DiskRead(); err != nil {
		t.Fatal(err)
	}
	if err := in.DiskWrite(); err != nil {
		t.Fatal(err)
	}
	if in.Latency() != 0 {
		t.Fatal("nil injector added latency")
	}
	if in.CorruptCache(frag) || in.CorruptSwap(frag) {
		t.Fatal("nil injector corrupted data")
	}
	if in.Stats() != (in.Stats()) {
		t.Fatal("nil injector stats not stable")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	var clock sim.Clock
	in, err := New(Config{Seed: 7, CacheCorruptionRate: 1}, &clock)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]byte, 128)
	for i := range orig {
		orig[i] = byte(i)
	}
	for round := 0; round < 50; round++ {
		frag := append([]byte(nil), orig...)
		if !in.CorruptCache(frag) {
			t.Fatal("rate-1 corruption did not fire")
		}
		flipped := 0
		for i := range frag {
			flipped += bits.OnesCount8(frag[i] ^ orig[i])
		}
		if flipped != 1 {
			t.Fatalf("round %d: %d bits flipped, want exactly 1", round, flipped)
		}
	}
	if got := in.Stats().InjectedCorruptions; got != 50 {
		t.Fatalf("InjectedCorruptions = %d, want 50", got)
	}
	if in.CorruptSwap(nil) {
		t.Fatal("empty fragment reported corrupted")
	}
}

func TestActivityWindow(t *testing.T) {
	var clock sim.Clock
	in, err := New(Config{
		Seed:          1,
		ReadErrorRate: 1,
		ActiveAfter:   10 * time.Millisecond,
		ActiveFor:     20 * time.Millisecond,
	}, &clock)
	if err != nil {
		t.Fatal(err)
	}
	if in.DiskRead() != nil {
		t.Fatal("injected before ActiveAfter")
	}
	clock.Advance(15 * time.Millisecond) // inside the window
	if in.DiskRead() == nil {
		t.Fatal("did not inject inside the window")
	}
	clock.Advance(30 * time.Millisecond) // past ActiveAfter+ActiveFor
	if in.DiskRead() != nil {
		t.Fatal("injected after the window closed")
	}
}

func TestTypedErrors(t *testing.T) {
	dev := &DeviceError{Op: "read", At: sim.Time(0).Add(time.Second)}
	corr := &CorruptionError{Page: "1/2", Reason: "checksum mismatch", Err: nil}
	unrec := &UnrecoverableError{Page: "1/2", Reason: "no backing copy", Err: dev}

	if IsUnrecoverable(dev) || IsUnrecoverable(corr) {
		t.Fatal("recoverable errors classified as unrecoverable")
	}
	if !IsUnrecoverable(unrec) {
		t.Fatal("UnrecoverableError not detected")
	}
	wrapped := fmt.Errorf("run 3: %w", unrec)
	if !IsUnrecoverable(wrapped) {
		t.Fatal("wrapped UnrecoverableError not detected")
	}
	var de *DeviceError
	if !errors.As(unrec, &de) {
		t.Fatal("UnrecoverableError does not unwrap to its cause")
	}
	for _, e := range []error{dev, corr, unrec, &CorruptionError{Page: "p", Reason: "r", Err: dev}} {
		if e.Error() == "" {
			t.Fatal("empty error string")
		}
	}
}

// TestZeroRateConsumesNoRandomness checks the draw-isolation property: a
// fault class whose rate is zero consumes no randomness, so its
// opportunities do not perturb the decisions of the classes that are
// enabled.
func TestZeroRateConsumesNoRandomness(t *testing.T) {
	run := func(interleaveWrites bool) string {
		var clock sim.Clock
		in, err := New(Config{Seed: 9, ReadErrorRate: 0.2}, &clock)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for i := 0; i < 200; i++ {
			clock.Advance(time.Millisecond)
			out += fmt.Sprint(in.DiskRead() != nil)
			if interleaveWrites {
				if err := in.DiskWrite(); err != nil {
					t.Fatal("zero-rate write error fired")
				}
			}
		}
		return out
	}
	if run(false) != run(true) {
		t.Fatal("zero-rate write opportunities perturbed the read-error decision stream")
	}
}
