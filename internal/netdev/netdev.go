// Package netdev models paging over a network to a remote page server — the
// paper's target environment: "mobile computers may communicate over slower
// wireless networks and run either diskless or with small, slower local
// disks" (§1). It implements the same device interface the file system uses
// for a disk, so a whole machine can be built diskless.
//
// Cost model: each operation pays one round-trip latency plus transfer time
// at the link bandwidth, with an asynchronous send queue like the disk's
// write queue. There is no seek and no rotational position: a network makes
// every access "random", which is exactly why the paper expects compression
// to matter more there ("slower backing stores, such as wireless networks",
// §6).
package netdev

import (
	"fmt"
	"math"
	"time"

	"compcache/internal/fault"
	"compcache/internal/obs"
	"compcache/internal/sim"
	"compcache/internal/stats"
)

// Params describes a network path to a page server.
type Params struct {
	// RTT is the request/response round-trip latency charged per operation.
	RTT time.Duration

	// BytesPerSec is the link bandwidth.
	BytesPerSec float64

	// PerOp is fixed protocol processing overhead per operation.
	PerOp time.Duration

	// PacketBytes is the transfer granularity (payload per packet);
	// transfers round up to whole packets.
	PacketBytes int

	// Retries is how many times a failed transfer is reissued before the
	// failure is reported to the caller. Networks drop packets where disks
	// do not, so the page-server protocol retries; transfers only fail under
	// fault injection, so the retry knobs change nothing in a fault-free run.
	Retries int

	// RetryBase is the backoff before the first retry; each subsequent
	// retry doubles it, capped at RetryMax. Backoff elapses in virtual time.
	RetryBase time.Duration

	// RetryMax caps the exponential backoff. Zero means uncapped.
	RetryMax time.Duration
}

// Ethernet10 returns parameters for the 10-Mbps Ethernet of the paper's §3
// footnote ("it is more efficient to page over a 10-Mbps Ethernet to memory
// on a file server than to page to a local disk").
func Ethernet10() Params {
	return Params{
		RTT:         2 * time.Millisecond,
		BytesPerSec: 1.25e6,
		PerOp:       500 * time.Microsecond,
		PacketBytes: 1024,
		Retries:     3,
		RetryBase:   2 * time.Millisecond,
		RetryMax:    20 * time.Millisecond,
	}
}

// Wireless2 returns parameters for a ~2-Mbps early-90s wireless LAN
// (WaveLAN-class), the mobile scenario of §1.
func Wireless2() Params {
	return Params{
		RTT:         15 * time.Millisecond,
		BytesPerSec: 0.25e6,
		PerOp:       1 * time.Millisecond,
		PacketBytes: 1024,
		Retries:     4,
		RetryBase:   10 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
	}
}

// Validate reports whether the parameters describe a usable link.
func (p Params) Validate() error {
	if math.IsNaN(p.BytesPerSec) || math.IsInf(p.BytesPerSec, 0) || p.BytesPerSec <= 0 {
		return fmt.Errorf("netdev: BytesPerSec must be positive and finite, got %g", p.BytesPerSec)
	}
	if p.PacketBytes <= 0 {
		return fmt.Errorf("netdev: PacketBytes must be positive, got %d", p.PacketBytes)
	}
	// Cap the packet size well below the overflow point of TransferTime's
	// round-up arithmetic (n + PacketBytes - 1).
	if p.PacketBytes > 1<<30 {
		return fmt.Errorf("netdev: PacketBytes %d is unreasonably large", p.PacketBytes)
	}
	if p.RTT < 0 || p.PerOp < 0 {
		return fmt.Errorf("netdev: negative latency parameter")
	}
	if p.Retries < 0 {
		return fmt.Errorf("netdev: Retries must be non-negative, got %d", p.Retries)
	}
	if p.RetryBase < 0 || p.RetryMax < 0 {
		return fmt.Errorf("netdev: negative retry backoff parameter")
	}
	if p.RetryMax > 0 && p.RetryBase > p.RetryMax {
		return fmt.Errorf("netdev: RetryBase %v exceeds RetryMax %v", p.RetryBase, p.RetryMax)
	}
	return nil
}

// TransferTime reports the link time to move n bytes (whole packets).
func (p Params) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	packets := (n + p.PacketBytes - 1) / p.PacketBytes
	return time.Duration(float64(packets*p.PacketBytes) / p.BytesPerSec * float64(time.Second))
}

// Net is a remote page server reached over the modelled link. It satisfies
// the file system's Device interface; the remote server's memory plays the
// platter's role (contents are tracked by the fs layer, as with a disk).
type Net struct {
	params Params
	clock  *sim.Clock
	busyAt sim.Time
	st     stats.Disk
	faults *fault.Injector // nil injects nothing
	remote RemoteEndpoint  // nil models an infinitely fast server

	bus      *obs.Bus
	waitHist *obs.Histogram // net.queue_wait — delay behind the send queue
	svcHist  *obs.Histogram // net.service — RTT plus transfer
}

// New creates a network device on the given clock.
func New(p Params, clock *sim.Clock) (*Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Net{params: p, clock: clock}, nil
}

// Params reports the link parameters.
func (n *Net) Params() Params { return n.params }

// SetFaultInjector attaches a fault injector; nil (the default) disables
// injection. The injector must live on the same clock as the device.
func (n *Net) SetFaultInjector(in *fault.Injector) { n.faults = in }

// SetObserver wires the device to a machine's event bus; nil disables
// emission.
func (n *Net) SetObserver(b *obs.Bus) {
	n.bus = b
	n.waitHist = b.Histogram("net.queue_wait")
	n.svcHist = b.Histogram("net.service")
}

// RemoteEndpoint is the far side of the link: a shared page server whose own
// queueing and media delay the reply. Admit is called once per transfer
// attempt with the instant the request finishes arriving over the link;
// it returns when the server is done with it (>= arrival), and that excess
// lands on this device's timeline — callers queue behind server contention
// exactly as they queue behind the link. addr < 0 marks traffic with no
// server-side placement (pure forwards, e.g. machine-to-machine migration).
//
// Determinism contract: Admit is invoked in the issue order of this machine's
// transfers; a shared endpoint serializes admissions from the whole fleet in
// kernel dispatch order, so any -j gives the same timeline.
type RemoteEndpoint interface {
	Admit(arrival sim.Time, addr int64, bytes int, write bool) sim.Time
}

// SetRemote attaches the far-side endpoint; nil (the default) models an
// infinitely fast server, which keeps single-machine runs byte-identical to
// the pre-endpoint model.
func (n *Net) SetRemote(r RemoteEndpoint) { n.remote = r }

// Granularity reports the packet payload size (the fs.Device interface).
func (n *Net) Granularity() int { return n.params.PacketBytes }

// Stats reports transfer counters. Seeks are always zero: networks do not
// seek, which is itself a modelling point of difference from the disk.
func (n *Net) Stats() stats.Disk { return n.st }

// BusyUntil reports when the send queue drains.
func (n *Net) BusyUntil() sim.Time { return n.busyAt }

func (n *Net) opTime(bytes int) time.Duration {
	return n.params.PerOp + n.params.RTT + n.params.TransferTime(bytes)
}

func (n *Net) start() sim.Time {
	now := n.clock.Now()
	if n.busyAt > now {
		return n.busyAt
	}
	return now
}

// backoff reports the capped exponential delay before retry attempt number
// attempt (1-based): RetryBase doubling per attempt, capped at RetryMax.
func (p Params) backoff(attempt int) time.Duration {
	d := p.RetryBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.RetryMax > 0 && d >= p.RetryMax {
			return p.RetryMax
		}
	}
	if p.RetryMax > 0 && d > p.RetryMax {
		return p.RetryMax
	}
	return d
}

// attempt performs one transfer attempt: charge service time on the busy
// timeline, let the remote endpoint delay the reply, and draw the
// injected-failure decision.
func (n *Net) attempt(addr int64, bytes int, write bool, sync bool) error {
	svc := n.opTime(bytes) + n.faults.Latency()
	st := n.start()
	wait := time.Duration(st - n.clock.Now())
	done := st.Add(svc)
	if n.remote != nil {
		// The request lands on the server when the link finishes carrying it;
		// the server's own queueing and media extend the reply, and that time
		// is part of this attempt's service as seen by the caller.
		done = n.remote.Admit(done, addr, bytes, write)
		svc = time.Duration(done - st)
	}
	n.busyAt = done
	n.st.BusyTime += svc
	n.waitHist.Observe(wait)
	n.svcHist.Observe(svc)
	class := obs.ClassDiskRead
	if write {
		class = obs.ClassDiskWrite
	}
	if n.bus.Enabled(class) {
		n.bus.Emit(obs.Event{
			T: done, Class: class, Sub: obs.SubNet,
			Bytes: int64(bytes), Dur: svc, Aux: int64(wait),
		})
	}
	if sync {
		n.clock.AdvanceTo(done)
	}
	if write {
		return n.faults.DiskWrite()
	}
	return n.faults.DiskRead()
}

// transfer runs the attempt/backoff loop: each failed attempt backs off in
// virtual time (doubling, capped) and reissues the whole transfer. Failures
// only occur under injection, so in a fault-free run exactly one attempt is
// made and the cost model is unchanged.
func (n *Net) transfer(addr int64, bytes int, write bool, sync bool) error {
	err := n.attempt(addr, bytes, write, sync)
	for retry := 1; err != nil && retry <= n.params.Retries; retry++ {
		n.st.Retries++
		wait := n.params.backoff(retry)
		if n.bus.Enabled(obs.ClassRetry) {
			n.bus.Emit(obs.Event{
				T: n.clock.Now(), Class: obs.ClassRetry, Sub: obs.SubNet,
				Bytes: int64(bytes), Dur: wait, Aux: int64(retry),
			})
		}
		if sync {
			n.clock.Advance(wait)
		} else {
			// Queued transfer: the backoff elapses on the device timeline,
			// delaying everything queued behind it, not the caller.
			n.busyAt = n.busyAt.Add(wait)
		}
		err = n.attempt(addr, bytes, write, sync)
	}
	return err
}

// Read fetches n bytes from the page server, blocking the caller. A failed
// transfer is retried with capped exponential backoff in virtual time; the
// error is returned only once retries are exhausted.
func (n *Net) Read(addr int64, bytes int) error {
	n.st.Reads++
	n.st.BytesRead += uint64(bytes)
	return n.transfer(addr, bytes, false, true)
}

// Write sends n bytes to the page server, blocking the caller, with the
// same retry policy as Read.
func (n *Net) Write(addr int64, bytes int) error {
	n.st.Writes++
	n.st.BytesWritten += uint64(bytes)
	return n.transfer(addr, bytes, true, true)
}

// WriteAsync queues a send without blocking; subsequent synchronous
// operations queue behind it. Retries and their backoffs extend the send
// queue's timeline rather than the caller's clock.
func (n *Net) WriteAsync(addr int64, bytes int) (sim.Time, error) {
	n.st.Writes++
	n.st.BytesWritten += uint64(bytes)
	err := n.transfer(addr, bytes, true, false)
	return n.busyAt, err
}

// Drain advances the clock until the send queue empties.
//
//cclint:ignore obscoverage -- drain only retires the busy timeline; each send was probed when it was issued
func (n *Net) Drain() {
	n.clock.AdvanceTo(n.busyAt)
}
