// Package compress holds the codec hot-root fixtures: a function
// matching the Compress/Decompress borrow-only contract shape in an
// internal/compress package is a hot root all by itself.
package compress

// Compress matches the contract shape, so it is a hot root; the
// steady-state temporary is the violation.
func Compress(dst, src []byte) []byte {
	tmp := make([]byte, len(src)) // want `hot path Compress: make\(\[\]byte, len\(src\)\) allocates in steady state`
	copy(tmp, src)
	return append(dst[:0], tmp...)
}

// Codec shows the clean idioms: cap-guard growth of a pooled field
// (warm), append into the recycled dst (warm), and an error-path
// composite literal (cold). None of them is a finding.
type Codec struct {
	scratch []byte
}

type badInput struct{ n int }

func (b *badInput) Error() string { return "bad input" }

// check allocates only on the error path; the cold-return rule keeps
// its composite literal out of the steady summary.
func (c *Codec) check(n int) error {
	if n < 0 {
		return &badInput{n}
	}
	return nil
}

// Decompress matches the contract shape and stays allocation-free in
// steady state.
func (c *Codec) Decompress(dst, src []byte) ([]byte, error) {
	if err := c.check(len(src)); err != nil {
		return nil, err
	}
	if cap(c.scratch) < len(src) {
		c.scratch = make([]byte, len(src)) // warm: pooled field growth
	}
	buf := c.scratch[:len(src)]
	copy(buf, src)
	return append(dst[:0], buf...), nil
}
