package trace

import (
	"reflect"
	"testing"
)

// TestGeneratorDeterminism is the regression test behind the globalrand
// analyzer: every generator with a fixed seed must emit an identical
// reference sequence from two fresh instances. Each generator owns a
// private rand.Rand seeded from its Seed field, so nothing — not
// goroutine interleaving, not another generator running first, not the
// process-global source — can perturb the stream. If this test starts
// failing, some rand call slipped outside the seeded-source pattern (and
// cclint's globalrand analyzer should have caught it first).
func TestGeneratorDeterminism(t *testing.T) {
	fresh := map[string]func() Generator{
		"uniform": func() Generator {
			return &Uniform{N: 2000, Range: 1 << 20, WriteFrac: 0.3, CPUs: 4, Seed: 42}
		},
		"zipf": func() Generator {
			return &Zipf{N: 2000, Range: 1 << 20, Skew: 1.3, WriteFrac: 0.2, CPUs: 4, Seed: 42}
		},
		"sequential": func() Generator {
			return &Strided{N: 2000, Range: 1 << 20, Stride: 8, WriteFrac: 0.1, CPUs: 4, Seed: 42}
		},
		"mix": func() Generator {
			return &Mix{Gens: []Generator{
				&Uniform{N: 500, Range: 1 << 16, WriteFrac: 0.5, CPUs: 2, Seed: 7},
				&Zipf{N: 500, Range: 1 << 16, Skew: 1.5, WriteFrac: 0.5, CPUs: 2, Seed: 7},
				&Strided{N: 500, Range: 1 << 16, Stride: 4, WriteFrac: 0.5, CPUs: 2, Seed: 7},
			}}
		},
	}
	for name, mk := range fresh {
		t.Run(name, func(t *testing.T) {
			a := Collect(mk())
			b := Collect(mk())
			if len(a) == 0 {
				t.Fatal("generator emitted no references")
			}
			if !reflect.DeepEqual(a, b) {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("two fresh instances diverge at ref %d: %+v vs %+v", i, a[i], b[i])
					}
				}
				t.Fatalf("two fresh instances emit different lengths: %d vs %d", len(a), len(b))
			}
			// A different seed must change the stream — otherwise "seeded"
			// is vacuous and the determinism above proves nothing.
			switch g := mk().(type) {
			case *Uniform:
				g.Seed++
				if reflect.DeepEqual(a, Collect(g)) {
					t.Fatal("changing the seed did not change the stream")
				}
			case *Zipf:
				g.Seed++
				if reflect.DeepEqual(a, Collect(g)) {
					t.Fatal("changing the seed did not change the stream")
				}
			case *Strided:
				g.Seed++
				if reflect.DeepEqual(a, Collect(g)) {
					t.Fatal("changing the seed did not change the stream")
				}
			}
		})
	}
}
