package compress

import (
	"bytes"
	"math/rand"
	"testing"
)

// The machine's page-out/page-in hot path hands every codec a preallocated
// scratch buffer and expects the codec to stay inside it: a per-page heap
// allocation in Compress or Decompress turns the simulated "fast" memory
// tier into a GC treadmill on the host. Each codec must therefore run
// allocation-free once its internal pools are warm and dst has capacity for
// the worst case.
func TestCodecZeroAllocs(t *testing.T) {
	pageSize := 4096
	rng := rand.New(rand.NewSource(7))
	pages := map[string][]byte{
		"zero":   make([]byte, pageSize),
		"text":   bytes.Repeat([]byte("page table entry walk "), pageSize/22+1)[:pageSize],
		"random": make([]byte, pageSize),
	}
	rng.Read(pages["random"])

	for _, c := range allCodecs(t) {
		c := c
		for kind, page := range pages {
			page := page
			t.Run(c.Name()+"/"+kind, func(t *testing.T) {
				comp := make([]byte, 0, c.MaxCompressedSize(pageSize))
				plain := make([]byte, 0, pageSize)
				// Warm-up primes internal pools (LZSS's hash-chain scratch).
				comp = c.Compress(comp[:0], page)
				if n := testing.AllocsPerRun(100, func() {
					comp = c.Compress(comp[:0], page)
				}); n != 0 {
					t.Errorf("Compress allocates %v times per run", n)
				}
				if n := testing.AllocsPerRun(100, func() {
					out, err := c.Decompress(plain[:0], comp)
					if err != nil {
						t.Fatal(err)
					}
					plain = out[:0]
				}); n != 0 {
					t.Errorf("Decompress allocates %v times per run", n)
				}
				out, err := c.Decompress(plain[:0], comp)
				if err != nil || !bytes.Equal(out, page) {
					t.Fatalf("round trip broke under alloc measurement: %v", err)
				}
			})
		}
	}
}
