package lint

// hotalloc: no steady-state allocation may be reachable from the paging
// hot path. PR 6 made the fault-service path allocation-free and proved
// it with testing.AllocsPerRun on the entry points; hotalloc is the
// static half of that contract. It walks the call graph forward from the
// hot roots — machine.PageIn/PageOut, core.Cache.Insert, and every codec
// Compress/Decompress matching the (dst, src []byte) contract shape —
// along non-cold edges (error and panic paths are excluded, matching
// what AllocsPerRun exercises) and reports every steady-state allocation
// site in every function it reaches, with the call chain from the root,
// the way crosscredit prints its credit chains.
//
// Warm sites (pooled buffers growing to working capacity, map writes,
// sync.Pool refills) are allowed: they amortize to zero, which is what
// the dynamic tests measure after warm-up. An intentional steady
// allocation (e.g. the first touch of a sparse platter block) takes a
// line-level //cclint:ignore hotalloc directive with a written reason.

// HotAlloc reports steady-state allocations reachable from the paging
// and compression hot path.
type HotAlloc struct{}

// Name implements Analyzer.
func (HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (HotAlloc) Doc() string {
	return "no steady-state allocation reachable from PageIn/PageOut/Cache.Insert or a codec"
}

// Severity implements Analyzer.
func (HotAlloc) Severity() Severity { return SevError }

// Check implements Analyzer.
func (HotAlloc) Check(pkg *Package) []Diagnostic {
	facts := pkg.Mod.Effects()
	chains := facts.HotChains()
	var out []Diagnostic
	for _, n := range pkg.Mod.Graph.order {
		if n.Pkg != pkg {
			continue
		}
		chain, hot := chains[n.Fn]
		if !hot {
			continue
		}
		fe := facts.Of(n.Fn)
		for _, site := range fe.Sites {
			if site.Class != SiteSteady {
				continue
			}
			out = append(out, diag(pkg, "hotalloc", site.Node,
				"hot path %s: %s allocates in steady state", chainString(chain), site.What))
		}
	}
	return out
}
