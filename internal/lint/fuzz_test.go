package lint

import (
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// FuzzIgnoreDirective hammers the //cclint:ignore directive parser with
// arbitrary tails (the text after the "cclint:ignore" prefix). The parser
// sits on the untrusted edge of the lint engine — every comment in the
// tree flows through it — so the invariants are checked directly:
//
//   - it never panics and never returns nil;
//   - every accepted analyzer name is in the known set, trimmed, and
//     never the unsuppressable hygiene pseudo-analyzer;
//   - a rejected name really is unknown;
//   - a present non-empty reason is never misparsed as missing (the
//     noReason flag is what turns a directive into a hygiene finding);
//   - parsing is deterministic.
//
// The checked-in seed corpus under testdata/fuzz/FuzzIgnoreDirective
// covers the shapes that have bitten in review: empty reasons,
// multi-analyzer lists, and malformed "--" separators.
func FuzzIgnoreDirective(f *testing.F) {
	seeds := []string{
		" walltime -- host-time progress report",
		" walltime,maprange,errdrop -- several analyzers at once",
		" walltime --",
		" -- reason with no analyzer",
		" crosscredit - - broken separator",
		" obscoverage — em dash is not a separator",
		" cclint -- the hygiene pseudo-analyzer cannot be named",
		" , ,sharedwrite , -- ragged list",
		" unknownanalyzer -- not an analyzer",
		"",
		"----",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name()] = true
	}
	f.Fuzz(func(t *testing.T, rest string) {
		pos := token.Position{Filename: "fuzz.go", Line: 1, Column: 1}
		d := parseDirective(rest, pos, known)
		if d == nil {
			t.Fatal("parseDirective returned nil")
		}
		for _, name := range d.analyzers {
			if !known[name] || name == hygieneName {
				t.Fatalf("accepted analyzer %q is not in the known set", name)
			}
			if strings.TrimSpace(name) != name || name == "" {
				t.Fatalf("accepted analyzer name %q is not trimmed", name)
			}
		}
		for _, name := range d.badNames {
			if known[name] && name != hygieneName {
				t.Fatalf("rejected known analyzer %q", name)
			}
		}
		if _, reason, ok := strings.Cut(rest, "--"); ok && strings.TrimSpace(reason) != "" && d.noReason {
			t.Fatalf("reason present but noReason set for %q", rest)
		}
		if d2 := parseDirective(rest, pos, known); !reflect.DeepEqual(d, d2) {
			t.Fatalf("parseDirective is not deterministic for %q", rest)
		}
	})
}
