// Package sc is a golden fixture for the snapcover analyzer: every
// stored field of a SnapshotTo/RestoreFrom type must be written by the
// snapshot AND read back by the restore, or carry a reasoned ignore.
package sc

import "compcache/snapcover/internal/snap"

// Good covers every stored field; the deliberately unserialized scratch
// field carries a reasoned ignore, and the func-typed callback is
// auto-exempt (callbacks cannot be serialized).
type Good struct {
	pages   int64
	name    string
	scratch []byte //cclint:ignore snapcover -- scratch: refilled on demand, dead between calls
	onEvict func(int64)
}

// SnapshotTo writes the replay state.
func (g *Good) SnapshotTo(w *snap.Writer) {
	w.I64(g.pages)
	w.String(g.name)
}

// RestoreFrom reads it back in the same order.
func (g *Good) RestoreFrom(r *snap.Reader) {
	g.pages = r.I64()
	g.name = r.String()
}

// Bad has a field on neither side: never serialized at all.
type Bad struct {
	rate int64
	skew int64 // want `field Bad\.skew is never written by SnapshotTo` `field Bad\.skew is never restored by RestoreFrom`
}

// SnapshotTo forgets skew.
func (b *Bad) SnapshotTo(w *snap.Writer) { w.I64(b.rate) }

// RestoreFrom forgets it too.
func (b *Bad) RestoreFrom(r *snap.Reader) { b.rate = r.I64() }

// Half writes both fields but restores only one: the stream desyncs
// silently — the bug class the restored-side check exists for.
type Half struct {
	used int64
	free int64 // want `field Half\.free is never restored by RestoreFrom`
}

// SnapshotTo writes both counters.
func (h *Half) SnapshotTo(w *snap.Writer) {
	w.I64(h.used)
	w.I64(h.free)
}

// RestoreFrom reads only the first.
func (h *Half) RestoreFrom(r *snap.Reader) { h.used = r.I64() }

// Deep covers its fields through helpers: the coverage walk follows the
// forward call graph from each method.
type Deep struct {
	head int64
	tail int64
}

// SnapshotTo delegates to a helper.
func (d *Deep) SnapshotTo(w *snap.Writer) { d.writeEnds(w) }

// RestoreFrom delegates too.
func (d *Deep) RestoreFrom(r *snap.Reader) { d.readEnds(r) }

func (d *Deep) writeEnds(w *snap.Writer) { w.I64(d.head); w.I64(d.tail) }

func (d *Deep) readEnds(r *snap.Reader) { d.head = r.I64(); d.tail = r.I64() }
