// Package machine holds the PageIn/PageOut hot-root fixtures for the
// hotalloc analyzer. The acceptance case lives here: a make() buried in
// a helper the fault-service path reaches must be reported with the full
// call chain.
package machine

// Machine is a miniature of the real machine: a backing map standing in
// for the swap store and a pooled scratch buffer.
type Machine struct {
	store   map[int64][]byte
	scratch []byte
}

// PageIn is a hot root; everything it reaches must not allocate in
// steady state. The violation is in decompressInto, one call down.
func (m *Machine) PageIn(page int64, frame []byte) error {
	return m.decompressInto(frame, m.store[page])
}

// PageOut stays on the clean path: the cap-guard growth of a pooled
// field and the map write are both amortized, not steady-state.
func (m *Machine) PageOut(page int64, frame []byte) error {
	if cap(m.scratch) < len(frame) {
		m.scratch = make([]byte, len(frame)) // warm: pooled field growth
	}
	buf := m.scratch[:len(frame)]
	copy(buf, frame)
	m.store[page] = buf // warm: map rehash is amortized
	return nil
}

// decompressInto is the acceptance criterion's target: inserting a
// make([]byte, n) here must be caught, with the chain from PageIn.
func (m *Machine) decompressInto(dst, src []byte) error {
	tmp := make([]byte, len(src)) // want `hot path PageIn.*decompressInto: make\(\[\]byte, len\(src\)\) allocates in steady state`
	copy(tmp, src)
	copy(dst, tmp)
	return nil
}
