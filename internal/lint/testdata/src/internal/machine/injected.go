// Package machine is a golden fixture that stands in for
// compcache/internal/machine (the loader maps this directory to an import
// path ending in internal/machine, which is the clockcredit scope). It
// proves the two headline regressions are caught without editing the real
// machine package: a wall-clock read injected into the simulation core,
// and simulated work whose cost never reaches the virtual clock.
package machine

import "time"

// Injected is the canonical virtual-time-purity regression: host time
// leaking into the machine package.
func Injected() int64 {
	return time.Now().UnixNano() // want `wall-clock call time\.Now`
}
